//! Property-based stress test: random mixes of compute/sleep/block tasks
//! driven through the kernel must uphold global invariants regardless of
//! the schedule that emerges.
//!
//! Invariants checked per run:
//! 1. Work conservation — total busy time across CPUs equals the CPU time
//!    charged to tasks.
//! 2. Capacity — no CPU accrues more busy time than wall time.
//! 3. Progress — with finite work and no blocking cycles, every task exits.
//! 4. Placement legality — pinned tasks only ever ran on their CPU.

use bl_kernel::kernel::{Hw, Kernel, KernelConfig, WakeRequest};
use bl_kernel::task::{Affinity, BehaviorCtx, Step, TaskId, TaskState};
use bl_platform::exynos::exynos5422;
use bl_platform::ids::CpuId;
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::state::PlatformState;
use bl_platform::topology::Platform;
use bl_simcore::event::EventQueue;
use bl_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TaskPlan {
    /// (work in little-ms at max freq, sleep ms after) segments.
    segments: Vec<(u16, u16)>,
    pinned: Option<u8>,
}

fn plan_strategy() -> impl Strategy<Value = TaskPlan> {
    (
        proptest::collection::vec((1u16..40, 0u16..30), 1..6),
        proptest::option::of(0u8..8),
    )
        .prop_map(|(segments, pinned)| TaskPlan { segments, pinned })
}

struct PlanBehavior {
    segments: std::vec::IntoIter<(Work, SimDuration)>,
    pending_sleep: Option<SimDuration>,
}

impl bl_kernel::task::TaskBehavior for PlanBehavior {
    fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
        if let Some(d) = self.pending_sleep.take() {
            if !d.is_zero() {
                return Step::Sleep(d);
            }
        }
        match self.segments.next() {
            Some((work, sleep)) => {
                self.pending_sleep = Some(sleep);
                Step::Compute {
                    work,
                    profile: WorkProfile::compute_bound(),
                }
            }
            None => Step::Exit,
        }
    }
}

enum Ev {
    Tick,
    Timer(WakeRequest),
}

fn drive(plans: Vec<TaskPlan>) -> (Platform, Kernel, SimTime, Vec<(TaskId, Option<CpuId>)>) {
    let platform = exynos5422();
    let mut state = PlatformState::new(&platform.topology);
    state.set_all_max(&platform.topology);
    let mut kernel = Kernel::new(
        platform.topology.n_cpus(),
        KernelConfig::default(),
        SimTime::ZERO,
    );
    let little_l2 = platform
        .topology
        .cluster_of_kind(bl_platform::ids::CoreKind::Little)
        .unwrap()
        .l2;

    let mut queue: EventQueue<Ev> = EventQueue::new();
    queue.schedule(SimTime::from_millis(4), Ev::Tick);

    let mut pins = Vec::new();
    {
        let hw = Hw {
            platform: &platform,
            state: &state,
        };
        for (i, plan) in plans.iter().enumerate() {
            let segments: Vec<(Work, SimDuration)> = plan
                .segments
                .iter()
                .map(|(w, s)| {
                    (
                        platform.perf.work_for(
                            &WorkProfile::compute_bound(),
                            bl_platform::ids::CoreKind::Little,
                            &little_l2,
                            1.3,
                            SimDuration::from_millis(*w as u64),
                        ),
                        SimDuration::from_millis(*s as u64),
                    )
                })
                .collect();
            let affinity = match plan.pinned {
                Some(c) => Affinity::Pinned(CpuId(c as usize % platform.topology.n_cpus())),
                None => Affinity::Any,
            };
            let behavior = PlanBehavior {
                segments: segments.into_iter(),
                pending_sleep: None,
            };
            let tid = kernel.spawn(
                format!("t{i}"),
                affinity,
                Box::new(behavior),
                &hw,
                SimTime::ZERO,
            );
            let pin = match affinity {
                Affinity::Pinned(c) => Some(c),
                _ => None,
            };
            pins.push((tid, pin));
        }
    }

    let deadline = SimTime::from_secs(10);
    let mut now = SimTime::ZERO;
    while now < deadline {
        let hw = Hw {
            platform: &platform,
            state: &state,
        };
        if kernel.all_exited() {
            break;
        }
        let next_event = queue.peek_time().unwrap_or(SimTime::MAX);
        let completion = kernel
            .next_completion_time(&hw, now)
            .unwrap_or(SimTime::MAX);
        let target = next_event.min(completion).min(deadline);
        kernel.advance_to(&hw, target);
        now = target;
        kernel.handle_completions(&hw, now);
        while queue.peek_time() == Some(now) {
            match queue.pop().unwrap().1 {
                Ev::Tick => {
                    kernel.tick(&hw, now);
                    queue.schedule(now + SimDuration::from_millis(4), Ev::Tick);
                }
                Ev::Timer(w) => kernel.timer_wake(w.tid, w.seq, &hw, now),
            }
        }
        for w in kernel.drain_wake_requests() {
            queue.schedule(w.at, Ev::Timer(w));
        }
        // Placement legality checked continuously.
        for (tid, pin) in &pins {
            if let (Some(pin), Some(cur)) = (pin, kernel.task_cpu(*tid)) {
                assert_eq!(cur, *pin, "pinned task migrated");
            }
        }
    }
    (platform, kernel, now, pins)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_invariants_hold_under_random_workloads(
        plans in proptest::collection::vec(plan_strategy(), 1..10)
    ) {
        let (platform, kernel, end, pins) = drive(plans);

        // 3. Progress: everything finished well inside the generous deadline.
        prop_assert!(kernel.all_exited(), "tasks stuck at {end}");

        // 1+2. Work conservation and capacity.
        let mut total_busy = SimDuration::ZERO;
        for cpu in platform.topology.cpus() {
            let busy = kernel.accounting().cumulative_busy(cpu);
            prop_assert!(
                busy <= end.duration_since(SimTime::ZERO) + SimDuration::from_millis(1),
                "{cpu} busy {busy} exceeds wall {end}"
            );
            total_busy += busy;
        }
        let mut total_task_time = SimDuration::ZERO;
        for (tid, _) in &pins {
            total_task_time += kernel.task_cpu_time(*tid);
            prop_assert_eq!(kernel.task_state(*tid), TaskState::Exited);
        }
        let diff = (total_busy.as_secs_f64() - total_task_time.as_secs_f64()).abs();
        prop_assert!(diff < 1e-6, "busy {total_busy} != task time {total_task_time}");
    }

    #[test]
    fn unpinned_compute_makes_monotone_progress(
        work_ms in 5u16..100,
        n_tasks in 1usize..8
    ) {
        // N identical unpinned tasks of W ms (little-reference) must finish
        // within a loose bound even if everything serialized on one little
        // core at max frequency.
        let plans: Vec<TaskPlan> = (0..n_tasks)
            .map(|_| TaskPlan { segments: vec![(work_ms, 0)], pinned: None })
            .collect();
        let (_p, kernel, end, _pins) = drive(plans);
        prop_assert!(kernel.all_exited());
        let bound_ms = work_ms as f64 * n_tasks as f64 + 100.0;
        prop_assert!(
            end.as_millis_f64() <= bound_ms,
            "took {end} for {n_tasks} x {work_ms}ms (bound {bound_ms}ms)"
        );
    }
}
