//! # bl-kernel
//!
//! The operating-system model of the simulator: tasks with pluggable
//! behaviors, per-CPU runqueues with CFS-style fair timeslicing, Linaro-HMP
//! load tracking and big↔little migration (paper Algorithm 1), and
//! intra-cluster load balancing.
//!
//! The kernel is driven by an external event loop (the `biglittle` crate):
//! the driver advances simulated time between events, asks the kernel when
//! the next quantum completes, delivers timer ticks, and applies governor
//! frequency decisions. The kernel owns all task and runqueue state.
//!
//! ## The HMP scheduler (paper §IV.B)
//!
//! Every scheduler tick the kernel updates each task's time-weighted CPU
//! load (half-life 32 ms by default — "the 1ms-period load generated 32ms
//! ago will be weighted by 50%"), normalized by current frequency. A task on
//! a little core whose load exceeds the *up-threshold* (default 700/1024)
//! migrates to the least-loaded big core; a task on a big core whose load
//! falls below the *down-threshold* (default 256/1024) migrates back.
//! Sleeping tasks' loads are frozen ("if a task enters the sleep state, its
//! load is not updated").

#![warn(missing_docs)]

pub mod accounting;
pub mod hmp;
pub mod kernel;
pub mod load;
pub mod policy;
pub mod runqueue;
pub mod task;

pub use hmp::HmpParams;
pub use kernel::{Kernel, KernelConfig, KernelSaved, TaskCensus, TaskSaved};
pub use load::{LoadSet, LoadSetSaved, LoadTracker};
pub use policy::AsymPolicy;
pub use task::{
    Affinity, AppSignal, BehaviorCtx, BehaviorSaved, ForkCtx, RestoreCtx, SaveCtx, Step,
    TaskBehavior, TaskId, TaskState,
};
