//! HMP-style time-weighted task load tracking.
//!
//! The Linaro HMP scheduler tracks each task's load as a geometric series
//! over 1 ms contribution windows; the paper states the decay such that "the
//! 1ms-period load generated 32ms ago will be weighted by 50%". We implement
//! the continuous-time equivalent: an exponentially weighted moving average
//! with a configurable half-life,
//!
//! `load(t+dt) = load(t)·d + SCALE·r·(1−d)`, with `d = 0.5^(dt/halflife)`
//!
//! where `r ∈ [0,1]` is the task's contribution level over the elapsed
//! interval: its runnable fraction scaled by `f_cur/f_max` of the CPU it
//! occupies (the paper: "the CPU load should be normalized by the current
//! clock frequency"). Loads are frozen while the task sleeps (paper §IV.B).

use bl_simcore::kernels::{self, ExpMemo};
use bl_simcore::time::SimTime;

/// Full-scale load value (a task continuously runnable at max frequency).
pub const LOAD_SCALE: f64 = 1024.0;

/// Per-task exponentially decayed load average on the 0–1024 scale.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    load: f64,
    halflife_ms: f64,
    /// `-ln 2 / halflife_ms`, precomputed at construction so the per-update
    /// decay is one `exp` instead of a `powf` re-deriving the logarithm.
    rate_per_ms: f64,
    last_update: SimTime,
}

impl LoadTracker {
    /// Creates a tracker with zero load and the given half-life.
    ///
    /// # Panics
    ///
    /// Panics if `halflife_ms` is not positive.
    pub fn new(start: SimTime, halflife_ms: f64) -> Self {
        assert!(halflife_ms > 0.0, "half-life must be positive");
        LoadTracker {
            load: 0.0,
            halflife_ms,
            rate_per_ms: kernels::ewma_rate_per_ms(halflife_ms),
            last_update: start,
        }
    }

    /// Current load in `[0, 1024]`.
    pub fn value(&self) -> f64 {
        self.load
    }

    /// The configured half-life in milliseconds.
    pub fn halflife_ms(&self) -> f64 {
        self.halflife_ms
    }

    /// Folds in the contribution level `r` (runnable fraction × frequency
    /// ratio, in `[0,1]`) held over `[last_update, now]`, then advances the
    /// update point.
    pub fn update(&mut self, now: SimTime, r: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&r),
            "contribution out of range: {r}"
        );
        if now <= self.last_update {
            return;
        }
        let dt_ms = now.duration_since(self.last_update).as_millis_f64();
        let d = (dt_ms * self.rate_per_ms).exp();
        self.load = self.load * d + LOAD_SCALE * r.clamp(0.0, 1.0) * (1.0 - d);
        self.last_update = now;
    }

    /// Freezes the load across a sleep: moves the update point to `now`
    /// without decaying (HMP does not update sleeping tasks' loads).
    pub fn skip_to(&mut self, now: SimTime) {
        if now > self.last_update {
            self.last_update = now;
        }
    }
}

/// Structure-of-arrays load tracking for a whole task population.
///
/// Semantically one [`LoadTracker`] per task (identical EWMA formula,
/// identical freeze-on-sleep rule), but the values and update points live
/// in two parallel vectors sharing one half-life. The kernel's per-advance
/// batch loop then walks contiguous `f64`s instead of hopping across
/// per-task control blocks, and snapshotting the whole population is two
/// `memcpy`s.
#[derive(Debug, Clone)]
pub struct LoadSet {
    values: Vec<f64>,
    last_update: Vec<SimTime>,
    halflife_ms: f64,
    /// `-ln 2 / halflife_ms`, precomputed once (see [`LoadTracker`]).
    rate_per_ms: f64,
    /// Memo for the batch path's decay `exp`: consecutive lanes (and
    /// consecutive ticks) overwhelmingly share the same elapsed interval.
    memo: ExpMemo,
}

impl LoadSet {
    /// Creates an empty set whose trackers share `halflife_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `halflife_ms` is not positive.
    pub fn new(halflife_ms: f64) -> Self {
        assert!(halflife_ms > 0.0, "half-life must be positive");
        LoadSet {
            values: Vec::new(),
            last_update: Vec::new(),
            halflife_ms,
            rate_per_ms: kernels::ewma_rate_per_ms(halflife_ms),
            memo: ExpMemo::new(),
        }
    }

    /// Adds a tracker with zero load whose decay starts at `start`;
    /// returns its index (dense from 0 in push order).
    pub fn push(&mut self, start: SimTime) -> usize {
        self.values.push(0.0);
        self.last_update.push(start);
        self.values.len() - 1
    }

    /// Number of tracked tasks.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no task is tracked.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current load of tracker `idx` in `[0, 1024]`.
    pub fn value(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// The shared half-life in milliseconds.
    pub fn halflife_ms(&self) -> f64 {
        self.halflife_ms
    }

    /// Folds contribution `r` held over `[last_update, now]` into tracker
    /// `idx` — exactly [`LoadTracker::update`].
    pub fn update(&mut self, idx: usize, now: SimTime, r: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&r),
            "contribution out of range: {r}"
        );
        if now <= self.last_update[idx] {
            return;
        }
        let dt_ms = now.duration_since(self.last_update[idx]).as_millis_f64();
        let d = (dt_ms * self.rate_per_ms).exp();
        self.values[idx] = self.values[idx] * d + LOAD_SCALE * r.clamp(0.0, 1.0) * (1.0 - d);
        self.last_update[idx] = now;
    }

    /// Batch form of [`LoadSet::update`]: one pass over the whole
    /// population at instant `now`.
    ///
    /// `contribution(idx)` returns `Some(r)` to fold contribution `r`
    /// into tracker `idx` (exactly as `update(idx, now, r)` would) or
    /// `None` to leave it untouched (sleeping/blocked tasks). One fused
    /// pass over the contiguous lanes applies the
    /// [`kernels::fused_decay_accumulate`] recurrence per active lane,
    /// with the decay `exp` memoised: all lanes share the tick's `now`,
    /// so every lane updated on the previous tick shares one elapsed
    /// interval — and one transcendental — per tick. [`ExpMemo`] returns
    /// the exact bits `exp` would, so results are bit-identical to
    /// calling `update` per index.
    pub fn update_batch_with(
        &mut self,
        now: SimTime,
        mut contribution: impl FnMut(usize) -> Option<f64>,
    ) {
        for idx in 0..self.values.len() {
            let Some(r) = contribution(idx) else { continue };
            debug_assert!(
                (0.0..=1.0 + 1e-9).contains(&r),
                "contribution out of range: {r}"
            );
            if now <= self.last_update[idx] {
                continue;
            }
            let dt_ms = now.duration_since(self.last_update[idx]).as_millis_f64();
            let d = self.memo.exp(dt_ms * self.rate_per_ms);
            self.values[idx] = self.values[idx] * d + LOAD_SCALE * r.clamp(0.0, 1.0) * (1.0 - d);
            self.last_update[idx] = now;
        }
    }

    /// Freezes tracker `idx` across a sleep — exactly
    /// [`LoadTracker::skip_to`].
    pub fn skip_to(&mut self, idx: usize, now: SimTime) {
        if now > self.last_update[idx] {
            self.last_update[idx] = now;
        }
    }

    /// The raw load values, in task order — the batch read path for
    /// observers (reports, fingerprints) that want the whole population.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Captures the set's persistent state: the per-task lanes plus the
    /// shared half-life. Derived quantities (the precomputed decay rate
    /// and the `exp` memo) are rebuilt on restore; the memo is
    /// bit-transparent, so the restored set's future updates are
    /// bit-identical to the original's.
    pub fn state_save(&self) -> LoadSetSaved {
        LoadSetSaved {
            values: self.values.clone(),
            last_update: self.last_update.clone(),
            halflife_ms: self.halflife_ms,
        }
    }

    /// Rebuilds a set from [`LoadSet::state_save`] output.
    ///
    /// # Panics
    ///
    /// Panics if the saved half-life is not positive or the lane vectors
    /// disagree in length (possible only for hand-forged input — stored
    /// snapshots are checksummed).
    pub fn state_restore(saved: &LoadSetSaved) -> Self {
        assert_eq!(
            saved.values.len(),
            saved.last_update.len(),
            "load lanes must be parallel"
        );
        let mut set = LoadSet::new(saved.halflife_ms);
        set.values = saved.values.clone();
        set.last_update = saved.last_update.clone();
        set
    }
}

/// Serialized form of a [`LoadSet`], produced by [`LoadSet::state_save`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadSetSaved {
    values: Vec<f64>,
    last_update: Vec<SimTime>,
    halflife_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_simcore::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn rises_toward_scale_under_full_load() {
        let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += SimDuration::from_millis(4);
            t.update(now, 1.0);
        }
        assert!(t.value() > 1000.0, "load = {}", t.value());
        assert!(t.value() <= LOAD_SCALE + 1e-9);
    }

    #[test]
    fn halflife_semantics() {
        // A task fully loaded long enough to saturate, then idle for exactly
        // one half-life, retains half its load.
        let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
        t.update(SimTime::from_secs(10), 1.0); // long interval saturates
        let full = t.value();
        assert!((full - LOAD_SCALE).abs() < 1.0);
        t.update(SimTime::from_secs(10) + SimDuration::from_millis(32), 0.0);
        assert!((t.value() - full / 2.0).abs() < 1.0, "load = {}", t.value());
    }

    #[test]
    fn frequency_ratio_caps_steady_state() {
        // A task continuously runnable on a core at half max frequency
        // converges to ~512.
        let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
        t.update(SimTime::from_secs(5), 0.5);
        assert!((t.value() - 512.0).abs() < 1.0, "load = {}", t.value());
    }

    #[test]
    fn sleep_freezes_load() {
        let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
        t.update(SimTime::from_secs(1), 1.0);
        let before = t.value();
        t.skip_to(SimTime::from_secs(60)); // long sleep, load untouched
        assert_eq!(t.value(), before);
        // And the next update decays only from the skip point onward.
        t.update(SimTime::from_secs(60) + SimDuration::from_millis(32), 0.0);
        assert!((t.value() - before / 2.0).abs() < 1.0);
    }

    #[test]
    fn non_monotonic_time_is_ignored() {
        let mut t = LoadTracker::new(SimTime::from_secs(1), 32.0);
        t.update(SimTime::from_secs(2), 1.0);
        let v = t.value();
        t.update(SimTime::from_secs(2), 1.0); // same instant: no-op
        assert_eq!(t.value(), v);
    }

    #[test]
    fn shorter_halflife_reacts_faster() {
        let mut fast = LoadTracker::new(SimTime::ZERO, 16.0);
        let mut slow = LoadTracker::new(SimTime::ZERO, 64.0);
        let now = SimTime::from_millis(16);
        fast.update(now, 1.0);
        slow.update(now, 1.0);
        assert!(fast.value() > slow.value());
    }

    #[test]
    fn load_set_matches_trackers_step_for_step() {
        let mut trackers = [
            LoadTracker::new(SimTime::ZERO, 32.0),
            LoadTracker::new(SimTime::from_millis(7), 32.0),
        ];
        let mut set = LoadSet::new(32.0);
        set.push(SimTime::ZERO);
        set.push(SimTime::from_millis(7));
        let mut now = SimTime::ZERO;
        for step in 0..200u64 {
            now += SimDuration::from_millis(1 + step % 5);
            let r0 = (step % 7) as f64 / 7.0;
            trackers[0].update(now, r0);
            set.update(0, now, r0);
            if step % 3 == 0 {
                trackers[1].update(now, 1.0);
                set.update(1, now, 1.0);
            } else {
                trackers[1].skip_to(now);
                set.skip_to(1, now);
            }
            for (i, t) in trackers.iter().enumerate() {
                assert_eq!(set.value(i), t.value(), "tracker {i} at step {step}");
            }
        }
        assert_eq!(set.values(), &[trackers[0].value(), trackers[1].value()]);
    }

    #[test]
    fn batch_update_matches_per_index_updates() {
        let mut a = LoadSet::new(32.0);
        let mut b = LoadSet::new(32.0);
        for i in 0..5 {
            a.push(SimTime::from_millis(i));
            b.push(SimTime::from_millis(i));
        }
        let mut now = SimTime::from_millis(4);
        for step in 0..300u64 {
            now += SimDuration::from_millis(1 + step % 4);
            let r_of = |idx: usize| -> Option<f64> {
                if (step + idx as u64).is_multiple_of(3) {
                    None // "sleeping": untouched in both sets
                } else {
                    Some(((step + idx as u64) % 5) as f64 / 5.0)
                }
            };
            for idx in 0..a.len() {
                if let Some(r) = r_of(idx) {
                    a.update(idx, now, r);
                }
            }
            b.update_batch_with(now, r_of);
            for idx in 0..a.len() {
                assert_eq!(
                    a.value(idx).to_bits(),
                    b.value(idx).to_bits(),
                    "lane {idx} diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn state_save_restore_is_bit_transparent() {
        let mut orig = LoadSet::new(32.0);
        for i in 0..4 {
            orig.push(SimTime::from_millis(i));
        }
        let mut now = SimTime::from_millis(3);
        for step in 0..50u64 {
            now += SimDuration::from_millis(1 + step % 3);
            orig.update_batch_with(now, |idx| {
                (idx as u64 != step % 4).then_some(((step + idx as u64) % 5) as f64 / 5.0)
            });
        }
        let saved = orig.state_save();
        let mut restored = LoadSet::state_restore(&saved);
        assert_eq!(restored.values(), orig.values());
        assert_eq!(restored.halflife_ms(), orig.halflife_ms());
        // Future updates must match bit-for-bit despite the fresh memo.
        for step in 0..50u64 {
            now += SimDuration::from_millis(1 + step % 3);
            let r_of = |idx: usize| (idx as u64 != step % 3).then_some((step % 7) as f64 / 7.0);
            orig.update_batch_with(now, r_of);
            restored.update_batch_with(now, r_of);
            for idx in 0..orig.len() {
                assert_eq!(orig.value(idx).to_bits(), restored.value(idx).to_bits());
            }
        }
    }

    #[test]
    fn batch_update_ignores_stale_lanes() {
        let mut s = LoadSet::new(32.0);
        s.push(SimTime::ZERO);
        s.push(SimTime::from_millis(50)); // starts in the future
        s.update_batch_with(SimTime::from_millis(10), |_| Some(1.0));
        assert!(s.value(0) > 0.0);
        assert_eq!(s.value(1), 0.0, "stale-time lane must not move");
        // The stale lane's update point is untouched: decay later spans
        // its full configured interval.
        s.update_batch_with(SimTime::from_millis(60), |i| (i == 1).then_some(1.0));
        let mut reference = LoadTracker::new(SimTime::from_millis(50), 32.0);
        reference.update(SimTime::from_millis(60), 1.0);
        assert_eq!(s.value(1).to_bits(), reference.value().to_bits());
    }

    proptest! {
        #[test]
        fn load_stays_in_range(updates in proptest::collection::vec((1u64..100, 0.0f64..1.0), 1..100)) {
            let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
            let mut now = SimTime::ZERO;
            for (dt_ms, r) in updates {
                now += SimDuration::from_millis(dt_ms);
                t.update(now, r);
                prop_assert!(t.value() >= -1e-9);
                prop_assert!(t.value() <= LOAD_SCALE + 1e-9);
            }
        }

        #[test]
        fn constant_input_converges_to_scaled_value(r in 0.0f64..1.0) {
            let mut t = LoadTracker::new(SimTime::ZERO, 32.0);
            let mut now = SimTime::ZERO;
            for _ in 0..2000 {
                now += SimDuration::from_millis(1);
                t.update(now, r);
            }
            prop_assert!((t.value() - LOAD_SCALE * r).abs() < 2.0);
        }
    }
}
