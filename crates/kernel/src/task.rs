//! Tasks and their pluggable behaviors.

use bl_platform::ids::{CoreKind, CpuId};
use bl_platform::perf::{Work, WorkProfile};
use bl_simcore::time::{SimDuration, SimTime};
use core::fmt;

/// A task identifier, dense from 0 in spawn order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TaskState {
    /// On a runqueue (possibly currently executing).
    Runnable,
    /// Sleeping until a timer the kernel scheduled.
    Sleeping,
    /// Parked until another task (or the input script) wakes it.
    Blocked,
    /// Finished; never scheduled again.
    Exited,
}

/// What a task does next, produced by its [`TaskBehavior`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Execute `work` instructions characterized by `profile`.
    Compute {
        /// Amount of work to run before the next step.
        work: Work,
        /// Architectural character of the work.
        profile: WorkProfile,
    },
    /// Sleep for a duration, then continue.
    Sleep(SimDuration),
    /// Sleep until an absolute time (e.g. the next vsync), then continue.
    /// If the time is already past, continues immediately.
    SleepUntil(SimTime),
    /// Park until explicitly woken via [`BehaviorCtx::wake`] or the driver.
    Block,
    /// Terminate the task.
    Exit,
}

/// Where a task may run.
///
/// Serializable so a sweep's scenario description can carry the placement
/// of each workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Affinity {
    /// Any online CPU; subject to HMP migration.
    Any,
    /// Pinned to one CPU (used by the fixed-configuration architecture
    /// experiments); HMP never migrates it.
    Pinned(CpuId),
    /// Restricted to cores of one kind; HMP never migrates it across kinds.
    Kind(CoreKind),
}

/// Application-level signals emitted by behaviors and collected by the
/// measurement layer (frame completions for FPS, script completion for
/// latency).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AppSignal {
    /// A rendered frame was produced; `deadline_missed` reports whether it
    /// exceeded its vsync budget.
    Frame {
        /// Wall time the frame took to produce.
        frame_time: SimDuration,
    },
    /// The scripted user interaction completed (latency apps).
    ScriptDone,
    /// One user-visible action within the script finished.
    ActionDone,
    /// Free-form marker for experiments.
    Marker(u32),
}

/// Environment handed to behaviors when they produce the next step.
#[derive(Debug)]
pub struct BehaviorCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    pub(crate) wakes: &'a mut Vec<TaskId>,
    pub(crate) signals: &'a mut Vec<(SimTime, AppSignal)>,
}

impl<'a> BehaviorCtx<'a> {
    /// Creates a context over caller-owned wake and signal buffers. The
    /// kernel builds these internally; this constructor exists so behavior
    /// implementations can be unit-tested in isolation.
    pub fn new(
        now: SimTime,
        wakes: &'a mut Vec<TaskId>,
        signals: &'a mut Vec<(SimTime, AppSignal)>,
    ) -> Self {
        BehaviorCtx {
            now,
            wakes,
            signals,
        }
    }

    /// Requests that `tid` be woken (if blocked or sleeping) once the
    /// current step exchange finishes.
    pub fn wake(&mut self, tid: TaskId) {
        self.wakes.push(tid);
    }

    /// Emits an application-level signal at the current time.
    pub fn signal(&mut self, s: AppSignal) {
        self.signals.push((self.now, s));
    }
}

/// Deduplication context for forking behaviors that share state through
/// `Rc` handles (job queues, completion trackers, scene fences).
///
/// When a simulation is forked, each shared handle must be cloned **once**
/// and every behavior that held the original must receive the same new
/// handle — otherwise a pool's workers would each get a private copy of
/// the job queue and the fork would diverge from the parent. Behaviors
/// key the map by the address of the shared allocation
/// (`Rc::as_ptr(...) as usize`), which is unique per live allocation and
/// identical across all holders of one handle.
#[derive(Debug, Default)]
pub struct ForkCtx {
    cloned: std::collections::HashMap<usize, Box<dyn std::any::Any>>,
}

impl ForkCtx {
    /// Creates an empty context for one fork operation.
    pub fn new() -> Self {
        ForkCtx::default()
    }

    /// Returns the fork-local clone for the shared allocation at `key`,
    /// calling `make` to build it the first time the key is seen.
    ///
    /// # Panics
    ///
    /// Panics if two different types are registered under the same key —
    /// that would mean two distinct shared objects at one address, which
    /// cannot happen for live `Rc`s.
    pub fn dedup<T: Clone + 'static>(&mut self, key: usize, make: impl FnOnce() -> T) -> T {
        if let Some(existing) = self.cloned.get(&key) {
            return existing
                .downcast_ref::<T>()
                .expect("fork dedup key reused with a different type")
                .clone();
        }
        let fresh = make();
        self.cloned.insert(key, Box::new(fresh.clone()));
        fresh
    }
}

/// Serialized form of one task behavior: a dispatch tag naming the
/// concrete behavior type plus that type's own payload. The kernel treats
/// both as opaque; the workload crate that defined the behavior interprets
/// them when a persisted snapshot is hydrated.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BehaviorSaved {
    /// Dispatch tag (e.g. `"frame_loop"`) understood by the restoring
    /// workload crate.
    pub kind: String,
    /// Behavior-specific payload.
    pub data: serde::Value,
}

/// Deduplication context for *saving* behaviors that share state through
/// `Rc` handles — the persistence counterpart of [`ForkCtx`].
///
/// Each shared allocation (job queue, completion tracker, scene fence) is
/// assigned a small dense id the first time it is seen; every holder
/// records that id in its payload alongside a full copy of the shared
/// state. On restore, [`RestoreCtx::dedup`] rebuilds the allocation once
/// per id and hands every holder the same new handle, so sharing topology
/// survives the round trip exactly as it does across a fork.
#[derive(Debug, Default)]
pub struct SaveCtx {
    ids: std::collections::HashMap<usize, u64>,
}

impl SaveCtx {
    /// Creates an empty context for one save operation.
    pub fn new() -> Self {
        SaveCtx::default()
    }

    /// Returns the stable share id for the shared allocation at `ptr`
    /// (`Rc::as_ptr(...) as usize`), assigning the next dense id the first
    /// time the pointer is seen.
    pub fn share_id(&mut self, ptr: usize) -> u64 {
        let next = self.ids.len() as u64;
        *self.ids.entry(ptr).or_insert(next)
    }
}

/// Deduplication context for *restoring* saved behaviors: the mirror of
/// [`SaveCtx`], keyed by the share ids it assigned.
#[derive(Debug, Default)]
pub struct RestoreCtx {
    built: std::collections::HashMap<u64, Box<dyn std::any::Any>>,
}

impl RestoreCtx {
    /// Creates an empty context for one restore operation.
    pub fn new() -> Self {
        RestoreCtx::default()
    }

    /// Returns the restored instance for share id `id`, calling `make` to
    /// build it the first time the id is seen. Later holders of the same
    /// id receive clones of the first build, so their (identical) payload
    /// copies are ignored and the sharing topology is reconstructed.
    ///
    /// # Panics
    ///
    /// Panics if two different types are registered under the same id —
    /// only possible if save and restore code disagree about a behavior's
    /// shared-state type.
    pub fn dedup<T: Clone + 'static>(&mut self, id: u64, make: impl FnOnce() -> T) -> T {
        if let Some(existing) = self.built.get(&id) {
            return existing
                .downcast_ref::<T>()
                .expect("restore dedup id reused with a different type")
                .clone();
        }
        let fresh = make();
        self.built.insert(id, Box::new(fresh.clone()));
        fresh
    }
}

/// A task's behavior: a generator of [`Step`]s.
///
/// `next_step` is called when the task is created, whenever its current
/// compute quantum finishes, and whenever it is woken from sleep/block. The
/// behavior may wake other tasks and emit [`AppSignal`]s through the
/// context.
pub trait TaskBehavior {
    /// Produces the next step for this task.
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step;

    /// Produces an independent deep copy of this behavior for a forked
    /// simulation, deduplicating shared handles through `ctx`.
    ///
    /// Returning `None` (the default) declares the behavior opaque —
    /// ad-hoc closures, for example — and makes the owning simulation
    /// unsnapshottable; callers then fall back to a cold run. All
    /// behaviors shipped by the `workloads` crate implement this.
    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        let _ = ctx;
        None
    }

    /// Captures this behavior's full state as a serializable
    /// [`BehaviorSaved`] — the persistent counterpart of
    /// [`TaskBehavior::fork_box`]. Shared handles record a [`SaveCtx`]
    /// share id so the restorer can rebuild each shared allocation once.
    ///
    /// Returning `None` (the default) declares the behavior opaque to
    /// persistence; the owning simulation then cannot be written to the
    /// snapshot store and callers fall back to a cold run.
    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let _ = ctx;
        None
    }
}

impl<F> TaskBehavior for F
where
    F: FnMut(&mut BehaviorCtx<'_>) -> Step,
{
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        self(ctx)
    }
}

/// Internal per-task bookkeeping. Public within the crate only.
pub(crate) struct TaskCb {
    /// Interned at spawn; snapshots clone the `Arc`, not the bytes.
    pub(crate) name: std::sync::Arc<str>,
    pub(crate) state: TaskState,
    pub(crate) behavior: Box<dyn TaskBehavior>,
    pub(crate) affinity: Affinity,
    /// Remaining work of the current compute step.
    pub(crate) remaining: Work,
    /// Profile of the current compute step.
    pub(crate) profile: WorkProfile,
    /// CPU whose runqueue holds the task (valid while Runnable).
    pub(crate) cpu: Option<CpuId>,
    /// Last CPU the task ran on; wake placement prefers it (cache
    /// affinity), mirroring HMP behavior.
    pub(crate) last_cpu: Option<CpuId>,
    /// CFS-style virtual runtime in nanoseconds.
    pub(crate) vruntime: u64,
    /// Total CPU time consumed (diagnostics).
    pub(crate) cpu_time: SimDuration,
    /// CPU time split by core kind [little, big].
    pub(crate) cpu_time_by_kind: [SimDuration; 2],
}

impl fmt::Debug for TaskCb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskCb")
            .field("name", &self.name)
            .field("state", &self.state)
            .field("remaining", &self.remaining)
            .field("cpu", &self.cpu)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_behavior() {
        let mut calls = 0;
        {
            let mut b = |_ctx: &mut BehaviorCtx<'_>| {
                calls += 1;
                Step::Exit
            };
            let mut wakes = Vec::new();
            let mut signals = Vec::new();
            let mut ctx = BehaviorCtx {
                now: SimTime::ZERO,
                wakes: &mut wakes,
                signals: &mut signals,
            };
            assert_eq!(b.next_step(&mut ctx), Step::Exit);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn ctx_collects_wakes_and_signals() {
        let mut wakes = Vec::new();
        let mut signals = Vec::new();
        let mut ctx = BehaviorCtx {
            now: SimTime::from_millis(5),
            wakes: &mut wakes,
            signals: &mut signals,
        };
        ctx.wake(TaskId(3));
        ctx.signal(AppSignal::ScriptDone);
        assert_eq!(wakes, vec![TaskId(3)]);
        assert_eq!(
            signals,
            vec![(SimTime::from_millis(5), AppSignal::ScriptDone)]
        );
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(7).to_string(), "task7");
    }

    #[test]
    fn fork_ctx_dedups_by_key() {
        let mut ctx = ForkCtx::new();
        let mut builds = 0;
        let a: std::rc::Rc<u32> = ctx.dedup(42, || {
            builds += 1;
            std::rc::Rc::new(7)
        });
        let b: std::rc::Rc<u32> = ctx.dedup(42, || {
            builds += 1;
            std::rc::Rc::new(9)
        });
        assert_eq!(builds, 1, "second lookup must reuse the first clone");
        assert!(std::rc::Rc::ptr_eq(&a, &b));
        let c: std::rc::Rc<u32> = ctx.dedup(43, || std::rc::Rc::new(9));
        assert!(!std::rc::Rc::ptr_eq(&a, &c));
    }

    #[test]
    fn closures_are_not_forkable() {
        let b: Box<dyn TaskBehavior> = Box::new(|_: &mut BehaviorCtx<'_>| Step::Exit);
        assert!(b.fork_box(&mut ForkCtx::new()).is_none());
        assert!(b.save_box(&mut SaveCtx::new()).is_none());
    }

    #[test]
    fn save_ctx_assigns_dense_stable_ids() {
        let mut ctx = SaveCtx::new();
        let a = ctx.share_id(0xdead);
        let b = ctx.share_id(0xbeef);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(ctx.share_id(0xdead), a, "ids must be stable per pointer");
    }

    #[test]
    fn restore_ctx_dedups_by_id() {
        let mut ctx = RestoreCtx::new();
        let mut builds = 0;
        let a: std::rc::Rc<u32> = ctx.dedup(0, || {
            builds += 1;
            std::rc::Rc::new(7)
        });
        let b: std::rc::Rc<u32> = ctx.dedup(0, || {
            builds += 1;
            std::rc::Rc::new(9)
        });
        assert_eq!(builds, 1, "second lookup must reuse the first build");
        assert!(std::rc::Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn behavior_saved_round_trips() {
        let saved = BehaviorSaved {
            kind: "frame_loop".to_string(),
            data: serde::Value::UInt(42),
        };
        let json = serde_json::to_string(&saved).unwrap();
        let back: BehaviorSaved = serde_json::from_str(&json).unwrap();
        assert_eq!(back, saved);
    }
}
