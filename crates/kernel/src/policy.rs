//! Asymmetric-scheduling policies (paper §IV.A).
//!
//! The paper contrasts three approaches to mapping threads onto the two
//! core types:
//!
//! 1. **Utilization-based** — what commercial platforms ship: migrate on
//!    CPU-load thresholds ([`AsymPolicy::Hmp`], paper Algorithm 1).
//! 2. **Efficiency-based** (Kumar et al. \[1,2\]) — "the top *N* threads
//!    with high speedups with big cores are scheduled to *N* big cores".
//!    Requires a per-thread big-core speedup estimate; our simulator knows
//!    each task's [`bl_platform::perf::WorkProfile`], so the estimate is
//!    exact ([`AsymPolicy::EfficiencyBased`]).
//! 3. **Parallelism-aware** (Saez et al. \[8\]) — "when there is an
//!    abundant parallelism ... more small cores are used, but when the
//!    parallelism is low, a big core is used to reduce the length of the
//!    critical path" ([`AsymPolicy::ParallelismAware`]).
//!
//! The paper implements only (1) because it is what the hardware ships;
//! we provide all three so the academic alternatives can be compared on
//! the same workloads (see the `biglittle` ablation experiments).

use crate::hmp::HmpParams;
use serde::{Deserialize, Serialize};

/// How tasks are mapped across core types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AsymPolicy {
    /// Utilization-threshold migration — the production HMP scheduler.
    Hmp(HmpParams),
    /// Kumar-style: the top-N highest-speedup loaded threads own the N big
    /// cores.
    EfficiencyBased {
        /// Minimum load (0–1024) for a task to compete for a big core;
        /// keeps short-lived wisps from thrashing the ranking.
        min_load: f64,
    },
    /// Saez-style: low runnable parallelism → big cores (shorten the
    /// critical path); high parallelism → spread over little cores.
    ParallelismAware {
        /// Runnable-task count at or below which the system is considered
        /// serial-phase (typically the number of online big cores).
        serial_threshold: usize,
        /// Minimum load (0–1024) for a task to count toward parallelism.
        min_load: f64,
    },
    /// No cross-type migration (pinned architecture experiments).
    Disabled,
}

impl AsymPolicy {
    /// The platform default: HMP with stock parameters.
    pub fn default_hmp() -> Self {
        AsymPolicy::Hmp(HmpParams::default_platform())
    }

    /// Efficiency-based with the default load floor.
    pub fn efficiency_based() -> Self {
        AsymPolicy::EfficiencyBased { min_load: 128.0 }
    }

    /// Parallelism-aware with the default thresholds (serial == number of
    /// big cores on the modeled platform).
    pub fn parallelism_aware() -> Self {
        AsymPolicy::ParallelismAware {
            serial_threshold: 4,
            min_load: 128.0,
        }
    }

    /// Load-history half-life used for task load tracking under this
    /// policy.
    pub fn load_halflife_ms(&self) -> f64 {
        match self {
            AsymPolicy::Hmp(p) => p.load_halflife_ms,
            _ => 32.0,
        }
    }

    /// Validates internal parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid thresholds.
    pub fn assert_valid(&self) {
        match self {
            AsymPolicy::Hmp(p) => p.assert_valid(),
            AsymPolicy::EfficiencyBased { min_load } => {
                assert!((0.0..=1024.0).contains(min_load))
            }
            AsymPolicy::ParallelismAware { min_load, .. } => {
                assert!((0.0..=1024.0).contains(min_load))
            }
            AsymPolicy::Disabled => {}
        }
    }
}

impl Default for AsymPolicy {
    fn default() -> Self {
        AsymPolicy::default_hmp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hmp_with_paper_params() {
        match AsymPolicy::default() {
            AsymPolicy::Hmp(p) => {
                assert_eq!(p.up_threshold, 700.0);
                assert_eq!(p.down_threshold, 256.0);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn halflife_follows_hmp_params() {
        let p = AsymPolicy::Hmp(HmpParams::double_history());
        assert_eq!(p.load_halflife_ms(), 64.0);
        assert_eq!(AsymPolicy::efficiency_based().load_halflife_ms(), 32.0);
        assert_eq!(AsymPolicy::Disabled.load_halflife_ms(), 32.0);
    }

    #[test]
    fn all_variants_validate() {
        for p in [
            AsymPolicy::default_hmp(),
            AsymPolicy::efficiency_based(),
            AsymPolicy::parallelism_aware(),
            AsymPolicy::Disabled,
        ] {
            p.assert_valid();
        }
    }

    #[test]
    #[should_panic]
    fn bad_min_load_rejected() {
        AsymPolicy::EfficiencyBased { min_load: 9999.0 }.assert_valid();
    }
}
