//! Per-CPU busy-time accounting.
//!
//! The kernel accumulates cumulative busy nanoseconds per CPU; consumers
//! (governor sampling, the 10 ms metric sampler) keep their own snapshots
//! and difference against them, so multiple readers never interfere.

use bl_platform::ids::CpuId;
use bl_simcore::time::{SimDuration, SimTime};

/// Monotonic busy-time counters for every CPU.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CpuAccounting {
    busy_ns: Vec<u64>,
}

impl CpuAccounting {
    /// Creates counters for `n_cpus` CPUs, all zero.
    pub fn new(n_cpus: usize) -> Self {
        CpuAccounting {
            busy_ns: vec![0; n_cpus],
        }
    }

    /// Credits `dur` of busy time to `cpu`.
    pub fn add_busy(&mut self, cpu: CpuId, dur: SimDuration) {
        self.busy_ns[cpu.0] += dur.as_nanos();
    }

    /// Cumulative busy time of `cpu` since simulation start.
    pub fn cumulative_busy(&self, cpu: CpuId) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns[cpu.0])
    }

    /// Number of CPUs tracked.
    pub fn n_cpus(&self) -> usize {
        self.busy_ns.len()
    }
}

/// A reader's snapshot of [`CpuAccounting`], for windowed busy fractions.
/// Each CPU's window opens and closes independently, so readers with
/// different cadences per CPU (e.g. per-cluster governor sampling) stay
/// correct.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BusyWindow {
    snapshot_ns: Vec<u64>,
    window_start: Vec<SimTime>,
}

impl BusyWindow {
    /// Opens a window at `now` against the current counters.
    pub fn open(acct: &CpuAccounting, now: SimTime) -> Self {
        BusyWindow {
            snapshot_ns: acct.busy_ns.clone(),
            window_start: vec![now; acct.busy_ns.len()],
        }
    }

    /// Busy fraction of `cpu` in `[window_start, now]`, and re-opens that
    /// CPU's window at `now`. Returns 0 for an empty window.
    pub fn take_fraction(&mut self, acct: &CpuAccounting, cpu: CpuId, now: SimTime) -> f64 {
        let frac = self.peek_fraction(acct, cpu, now);
        self.snapshot_ns[cpu.0] = acct.busy_ns[cpu.0];
        self.window_start[cpu.0] = now;
        frac
    }

    /// Busy fraction without resetting.
    pub fn peek_fraction(&self, acct: &CpuAccounting, cpu: CpuId, now: SimTime) -> f64 {
        let window = now.duration_since(self.window_start[cpu.0]).as_nanos();
        if window == 0 {
            return 0.0;
        }
        let busy = acct.busy_ns[cpu.0].saturating_sub(self.snapshot_ns[cpu.0]);
        (busy as f64 / window as f64).min(1.0)
    }

    /// Busy time delta of `cpu` since the window opened, without resetting.
    pub fn peek_busy(&self, acct: &CpuAccounting, cpu: CpuId) -> SimDuration {
        SimDuration::from_nanos(acct.busy_ns[cpu.0].saturating_sub(self.snapshot_ns[cpu.0]))
    }

    /// Re-opens the window for all CPUs at `now`.
    pub fn reset_all(&mut self, acct: &CpuAccounting, now: SimTime) {
        self.snapshot_ns.copy_from_slice(&acct.busy_ns);
        self.window_start.iter_mut().for_each(|t| *t = now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_reflect_busy_time() {
        let mut acct = CpuAccounting::new(2);
        let mut w = BusyWindow::open(&acct, SimTime::ZERO);
        acct.add_busy(CpuId(0), SimDuration::from_millis(5));
        let now = SimTime::from_millis(10);
        assert!((w.take_fraction(&acct, CpuId(0), now) - 0.5).abs() < 1e-12);
        assert_eq!(w.peek_fraction(&acct, CpuId(1), now), 0.0);
    }

    #[test]
    fn take_resets_only_that_cpu() {
        let mut acct = CpuAccounting::new(2);
        let mut w = BusyWindow::open(&acct, SimTime::ZERO);
        acct.add_busy(CpuId(0), SimDuration::from_millis(10));
        acct.add_busy(CpuId(1), SimDuration::from_millis(10));
        let now = SimTime::from_millis(10);
        let _ = w.take_fraction(&acct, CpuId(0), now);
        // cpu0's counter was snapshotted; cpu1's was not.
        assert_eq!(w.peek_busy(&acct, CpuId(0)), SimDuration::ZERO);
        assert_eq!(w.peek_busy(&acct, CpuId(1)), SimDuration::from_millis(10));
    }

    #[test]
    fn empty_window_is_zero() {
        let acct = CpuAccounting::new(1);
        let w = BusyWindow::open(&acct, SimTime::from_millis(3));
        assert_eq!(
            w.peek_fraction(&acct, CpuId(0), SimTime::from_millis(3)),
            0.0
        );
    }

    #[test]
    fn fraction_caps_at_one() {
        // Rounding in the driver can credit marginally more busy time than
        // wall time; the fraction must still cap at 1.
        let mut acct = CpuAccounting::new(1);
        let w = BusyWindow::open(&acct, SimTime::ZERO);
        acct.add_busy(CpuId(0), SimDuration::from_millis(11));
        assert_eq!(
            w.peek_fraction(&acct, CpuId(0), SimTime::from_millis(10)),
            1.0
        );
    }

    #[test]
    fn reset_all_reopens() {
        let mut acct = CpuAccounting::new(2);
        let mut w = BusyWindow::open(&acct, SimTime::ZERO);
        acct.add_busy(CpuId(0), SimDuration::from_millis(4));
        w.reset_all(&acct, SimTime::from_millis(10));
        assert_eq!(w.peek_busy(&acct, CpuId(0)), SimDuration::ZERO);
        assert_eq!(
            w.peek_fraction(&acct, CpuId(0), SimTime::from_millis(20)),
            0.0
        );
        assert_eq!(acct.cumulative_busy(CpuId(0)), SimDuration::from_millis(4));
        assert_eq!(acct.n_cpus(), 2);
    }
}
