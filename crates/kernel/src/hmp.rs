//! HMP scheduler parameters (paper Algorithm 1 and §VI.C).

use serde::{Deserialize, Serialize};

/// Tunables of the HMP (Heterogeneous Multi-Processing) scheduler.
///
/// Defaults are the platform's: up-threshold 700, down-threshold 256 (on
/// the 0–1024 load scale), 32 ms history half-life. The paper's §VI.C
/// sweeps the *conservative* (850, 400), *aggressive* (550, 100), and
/// half/double history-weight variants, available as constructors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmpParams {
    /// Load above which a little-core task migrates up to a big core.
    pub up_threshold: f64,
    /// Load below which a big-core task migrates down to a little core.
    pub down_threshold: f64,
    /// Half-life of the load history EWMA in milliseconds.
    pub load_halflife_ms: f64,
}

impl HmpParams {
    /// The platform defaults (up 700, down 256, 32 ms history).
    pub fn default_platform() -> Self {
        HmpParams {
            up_threshold: 700.0,
            down_threshold: 256.0,
            load_halflife_ms: 32.0,
        }
    }

    /// Paper §VI.C "conservative (850,400)": keeps tasks on little cores
    /// more eagerly.
    pub fn conservative() -> Self {
        HmpParams {
            up_threshold: 850.0,
            down_threshold: 400.0,
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C "aggressive (550,100)": migrates tasks to big cores more
    /// eagerly.
    pub fn aggressive() -> Self {
        HmpParams {
            up_threshold: 550.0,
            down_threshold: 100.0,
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C "2x history weight": doubles the history scale (64 ms
    /// half-life), weighting the past more.
    pub fn double_history() -> Self {
        HmpParams {
            load_halflife_ms: 64.0,
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C "1/2 history weight": halves the history scale (16 ms
    /// half-life), weighting recent load more.
    pub fn half_history() -> Self {
        HmpParams {
            load_halflife_ms: 16.0,
            ..Self::default_platform()
        }
    }

    /// Validates threshold ordering.
    ///
    /// # Panics
    ///
    /// Panics if `down_threshold >= up_threshold` or values fall outside
    /// the 0–1024 load scale.
    pub fn assert_valid(&self) {
        assert!(
            self.down_threshold < self.up_threshold,
            "down threshold must be below up threshold"
        );
        assert!(self.up_threshold <= 1024.0 && self.down_threshold >= 0.0);
        assert!(self.load_halflife_ms > 0.0);
    }
}

impl Default for HmpParams {
    fn default() -> Self {
        HmpParams::default_platform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = HmpParams::default();
        assert_eq!(p.up_threshold, 700.0);
        assert_eq!(p.down_threshold, 256.0);
        assert_eq!(p.load_halflife_ms, 32.0);
        p.assert_valid();
    }

    #[test]
    fn paper_variants() {
        assert_eq!(HmpParams::conservative().up_threshold, 850.0);
        assert_eq!(HmpParams::conservative().down_threshold, 400.0);
        assert_eq!(HmpParams::aggressive().up_threshold, 550.0);
        assert_eq!(HmpParams::aggressive().down_threshold, 100.0);
        assert_eq!(HmpParams::double_history().load_halflife_ms, 64.0);
        assert_eq!(HmpParams::half_history().load_halflife_ms, 16.0);
        for p in [
            HmpParams::conservative(),
            HmpParams::aggressive(),
            HmpParams::double_history(),
            HmpParams::half_history(),
        ] {
            p.assert_valid();
        }
    }

    #[test]
    #[should_panic(expected = "below up threshold")]
    fn inverted_thresholds_rejected() {
        HmpParams {
            up_threshold: 100.0,
            down_threshold: 200.0,
            load_halflife_ms: 32.0,
        }
        .assert_valid();
    }
}
