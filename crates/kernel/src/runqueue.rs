//! Per-CPU runqueues with CFS-style minimum-vruntime dispatch.

use crate::task::TaskId;

/// A single CPU's queue of runnable tasks. The "current" task is the one
/// the CPU executes; the rest wait. Dispatch picks the waiting task with
/// the smallest virtual runtime (CFS fairness without the full rbtree
/// machinery — queues here hold at most a handful of tasks).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunQueue {
    current: Option<TaskId>,
    waiting: Vec<TaskId>,
}

impl RunQueue {
    /// Creates an empty runqueue.
    pub fn new() -> Self {
        RunQueue::default()
    }

    /// The task currently executing, if any.
    pub fn current(&self) -> Option<TaskId> {
        self.current
    }

    /// Tasks waiting (not including current).
    pub fn waiting(&self) -> &[TaskId] {
        &self.waiting
    }

    /// Total runnable tasks (current + waiting).
    pub fn len(&self) -> usize {
        self.waiting.len() + usize::from(self.current.is_some())
    }

    /// True when no runnable tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a task as waiting.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the task is already queued here.
    pub fn enqueue(&mut self, tid: TaskId) {
        debug_assert!(!self.contains(tid), "task already queued");
        self.waiting.push(tid);
    }

    /// Whether `tid` is current or waiting on this queue.
    pub fn contains(&self, tid: TaskId) -> bool {
        self.current == Some(tid) || self.waiting.contains(&tid)
    }

    /// Removes `tid` wherever it is. Returns true if it was the current
    /// task (caller must then dispatch a replacement).
    pub fn remove(&mut self, tid: TaskId) -> bool {
        if self.current == Some(tid) {
            self.current = None;
            return true;
        }
        if let Some(pos) = self.waiting.iter().position(|t| *t == tid) {
            self.waiting.remove(pos);
        }
        false
    }

    /// Moves the current task (if any) back to the waiting list; used at
    /// preemption points.
    pub fn yield_current(&mut self) {
        if let Some(c) = self.current.take() {
            self.waiting.push(c);
        }
    }

    /// Installs the waiting task with minimum key (vruntime) as current,
    /// if the CPU is idle and somebody waits. `key` maps a task to its
    /// vruntime. Returns the newly dispatched task.
    pub fn dispatch<K: Fn(TaskId) -> u64>(&mut self, key: K) -> Option<TaskId> {
        if self.current.is_some() || self.waiting.is_empty() {
            return None;
        }
        let (idx, _) = self
            .waiting
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| key(**t))?;
        let tid = self.waiting.remove(idx);
        self.current = Some(tid);
        Some(tid)
    }

    /// Steals one waiting task (the one with maximum key — heaviest first),
    /// for load balancing. Never steals the current task.
    pub fn steal<K: Fn(TaskId) -> u64>(&mut self, key: K) -> Option<TaskId> {
        if self.waiting.is_empty() {
            return None;
        }
        let (idx, _) = self
            .waiting
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| key(**t))?;
        Some(self.waiting.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_picks_min_vruntime() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1));
        q.enqueue(TaskId(2));
        q.enqueue(TaskId(3));
        let vr = |t: TaskId| match t.0 {
            1 => 50,
            2 => 10,
            _ => 99,
        };
        assert_eq!(q.dispatch(vr), Some(TaskId(2)));
        assert_eq!(q.current(), Some(TaskId(2)));
        // Busy CPU: no re-dispatch.
        assert_eq!(q.dispatch(vr), None);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn yield_and_redispatch_rotates() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1));
        q.enqueue(TaskId(2));
        q.dispatch(|t| t.0 as u64);
        assert_eq!(q.current(), Some(TaskId(1)));
        q.yield_current();
        // After running, task 1 has larger vruntime.
        let vr = |t: TaskId| if t.0 == 1 { 100 } else { 0 };
        assert_eq!(q.dispatch(vr), Some(TaskId(2)));
    }

    #[test]
    fn remove_current_signals_caller() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(5));
        q.dispatch(|_| 0);
        assert!(q.remove(TaskId(5)));
        assert!(q.is_empty());
    }

    #[test]
    fn remove_waiting_is_silent() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(5));
        q.enqueue(TaskId(6));
        q.dispatch(|t| t.0 as u64);
        assert!(!q.remove(TaskId(6)));
        assert_eq!(q.len(), 1);
        assert!(!q.contains(TaskId(6)));
        assert!(q.contains(TaskId(5)));
    }

    #[test]
    fn steal_takes_heaviest_waiter_not_current() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1));
        q.enqueue(TaskId(2));
        q.enqueue(TaskId(3));
        q.dispatch(|t| t.0 as u64); // current = 1
        let load = |t: TaskId| t.0 as u64 * 10;
        assert_eq!(q.steal(load), Some(TaskId(3)));
        assert_eq!(q.current(), Some(TaskId(1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn steal_empty_returns_none() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1));
        q.dispatch(|_| 0);
        assert_eq!(q.steal(|_| 0), None);
    }
}
