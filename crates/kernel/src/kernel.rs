//! The kernel orchestrator: task lifecycle, dispatch, HMP migration and
//! load balancing, driven by an external event loop.

use crate::accounting::CpuAccounting;
use crate::hmp::HmpParams;
use crate::load::{LoadSet, LoadSetSaved, LOAD_SCALE};
use crate::policy::AsymPolicy;
use crate::runqueue::RunQueue;
use crate::task::{
    Affinity, AppSignal, BehaviorCtx, BehaviorSaved, ForkCtx, RestoreCtx, SaveCtx, Step,
    TaskBehavior, TaskCb, TaskId, TaskState,
};
use bl_platform::ids::{CoreKind, CpuId};
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::state::PlatformState;
use bl_platform::topology::Platform;
use bl_simcore::error::SimError;
use bl_simcore::time::{SimDuration, SimTime};
use std::sync::Arc;

/// Work below this many instructions counts as complete (sub-nanosecond
/// residue from fixed-point event times).
const WORK_EPS_INSTRUCTIONS: f64 = 0.5;

/// Maximum immediate (zero-time) steps a behavior may take in one exchange
/// before the kernel declares it livelocked.
const MAX_IMMEDIATE_STEPS: usize = 128;

/// A read-only view of the hardware the kernel schedules onto.
#[derive(Debug, Clone, Copy)]
pub struct Hw<'a> {
    /// Static platform description.
    pub platform: &'a Platform,
    /// Current frequencies and hotplug state.
    pub state: &'a PlatformState,
}

impl<'a> Hw<'a> {
    /// Instruction rate of `profile` on `cpu` at the cluster's current
    /// frequency.
    pub fn rate(&self, profile: &WorkProfile, cpu: CpuId) -> f64 {
        let freq = self.state.freq_of(&self.platform.topology, cpu);
        self.platform.ips(profile, cpu, freq)
    }

    /// `f_cur / f_max` of the CPU's cluster — the load-normalization factor.
    pub fn freq_ratio(&self, cpu: CpuId) -> f64 {
        let topo = &self.platform.topology;
        let cluster = topo.cluster(topo.cluster_of(cpu));
        self.state.cluster_freq_khz(cluster.id) as f64 / cluster.core.opps.max_khz() as f64
    }

    /// Whether `cpu` is online.
    pub fn online(&self, cpu: CpuId) -> bool {
        self.state.is_online(cpu)
    }

    /// Online CPUs of a kind.
    pub fn online_of_kind(&self, kind: CoreKind) -> Vec<CpuId> {
        self.iter_online_of_kind(kind).collect()
    }

    /// Online CPUs of a kind, without allocating.
    pub fn iter_online_of_kind(&self, kind: CoreKind) -> impl Iterator<Item = CpuId> + '_ {
        self.platform
            .topology
            .cpus_of_kind(kind)
            .filter(|c| self.state.is_online(*c))
    }

    /// Number of online CPUs of a kind.
    pub fn n_online_of_kind(&self, kind: CoreKind) -> usize {
        self.iter_online_of_kind(kind).count()
    }
}

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelConfig {
    /// Scheduler tick period (Linux CONFIG_HZ=250 ⇒ 4 ms).
    pub tick_period: SimDuration,
    /// How tasks are mapped across core types (paper §IV.A).
    pub policy: AsymPolicy,
    /// Whether intra-cluster load balancing runs.
    pub balance_enabled: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tick_period: SimDuration::from_millis(4),
            policy: AsymPolicy::default_hmp(),
            balance_enabled: true,
        }
    }
}

/// One row of [`Kernel::task_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReportRow {
    /// Task name (shared with the kernel's interned copy).
    pub name: Arc<str>,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
    /// CPU time spent on little cores.
    pub little_time: SimDuration,
    /// CPU time spent on big cores.
    pub big_time: SimDuration,
    /// Current HMP load (0–1024).
    pub load: f64,
    /// Current lifecycle state.
    pub state: TaskState,
}

/// Task-conservation snapshot returned by [`Kernel::census`]: the raw
/// numbers the runtime invariant auditor checks against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCensus {
    /// Tasks ever spawned (including exited) — may only grow.
    pub spawned: usize,
    /// Tasks currently in [`TaskState::Runnable`].
    pub runnable: usize,
    /// Task slots occupied across all runqueues (current + waiting).
    /// Equals `runnable` when no task is lost or duplicated.
    pub queued: usize,
    /// Tasks that have exited.
    pub exited: usize,
}

/// A request from the kernel to the driver to schedule a wake timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WakeRequest {
    /// Task to wake.
    pub tid: TaskId,
    /// Sleep sequence number; stale timers (task woken early meanwhile) are
    /// ignored on delivery.
    pub seq: u64,
    /// When to fire.
    pub at: SimTime,
}

struct NoopBehavior;
impl TaskBehavior for NoopBehavior {
    fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
        Step::Exit
    }
}

/// The simulated OS kernel.
///
/// See the crate docs for the driving contract. All methods take the
/// hardware view explicitly; the kernel owns no platform state.
pub struct Kernel {
    cfg: KernelConfig,
    tasks: Vec<TaskCb>,
    /// Structure-of-arrays HMP load averages, indexed by `TaskId`. Kept
    /// out of [`TaskCb`] so the per-advance batch update walks contiguous
    /// memory.
    loads: LoadSet,
    sleep_seq: Vec<u64>,
    pending_wake_flag: Vec<bool>,
    rqs: Vec<RunQueue>,
    acct: CpuAccounting,
    last_advance: SimTime,
    wake_requests: Vec<WakeRequest>,
    signals: Vec<(SimTime, AppSignal)>,
    pending_wakes: Vec<TaskId>,
    migrations_up: u64,
    migrations_down: u64,
    /// Reused by `balance` so the per-tick cluster scan never allocates.
    balance_scratch: Vec<CpuId>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("tasks", &self.tasks.len())
            .field("last_advance", &self.last_advance)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Creates a kernel for `n_cpus` CPUs starting at `start`.
    pub fn new(n_cpus: usize, cfg: KernelConfig, start: SimTime) -> Self {
        cfg.policy.assert_valid();
        let loads = LoadSet::new(cfg.policy.load_halflife_ms());
        Kernel {
            cfg,
            tasks: Vec::new(),
            loads,
            sleep_seq: Vec::new(),
            pending_wake_flag: Vec::new(),
            rqs: (0..n_cpus).map(|_| RunQueue::new()).collect(),
            acct: CpuAccounting::new(n_cpus),
            last_advance: start,
            wake_requests: Vec::new(),
            signals: Vec::new(),
            pending_wakes: Vec::new(),
            migrations_up: 0,
            migrations_down: 0,
            balance_scratch: Vec::with_capacity(n_cpus),
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Spawns a task and immediately runs its first step exchange.
    pub fn spawn(
        &mut self,
        name: impl Into<Arc<str>>,
        affinity: Affinity,
        behavior: Box<dyn TaskBehavior>,
        hw: &Hw<'_>,
        now: SimTime,
    ) -> TaskId {
        let tid = TaskId(self.tasks.len());
        let load_idx = self.loads.push(now);
        debug_assert_eq!(load_idx, tid.0, "load set must stay task-indexed");
        self.tasks.push(TaskCb {
            name: name.into(),
            state: TaskState::Blocked,
            behavior,
            affinity,
            remaining: Work::ZERO,
            profile: WorkProfile::default(),
            cpu: None,
            last_cpu: None,
            vruntime: 0,
            cpu_time: SimDuration::ZERO,
            cpu_time_by_kind: [SimDuration::ZERO; 2],
        });
        self.sleep_seq.push(0);
        self.pending_wake_flag.push(false);
        self.exchange_step(tid, hw, now);
        self.drain_pending_wakes(hw, now);
        self.dispatch_all();
        tid
    }

    // ---- time advancement -------------------------------------------------

    /// Advances all CPUs to `now`: drains work on running tasks, accrues
    /// busy accounting and load averages.
    pub fn advance_to(&mut self, hw: &Hw<'_>, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt = now.duration_since(self.last_advance);
        for cpu_idx in 0..self.rqs.len() {
            let cpu = CpuId(cpu_idx);
            if let Some(tid) = self.rqs[cpu_idx].current() {
                let rate = hw.rate(&self.tasks[tid.0].profile, cpu);
                let executed = Work::from_instructions(rate * dt.as_secs_f64());
                let kind_idx = match hw.platform.topology.kind_of(cpu) {
                    CoreKind::Little => 0,
                    CoreKind::Big => 1,
                };
                let t = &mut self.tasks[tid.0];
                t.remaining = t.remaining.saturating_sub(executed);
                t.cpu_time += dt;
                t.cpu_time_by_kind[kind_idx] += dt;
                t.vruntime += dt.as_nanos();
                self.acct.add_busy(cpu, dt);
            }
        }
        // Load tracking: every runnable task contributes at its CPU's
        // frequency ratio; sleeping/blocked tasks are frozen. One fused
        // decay+accumulate kernel pass over the SoA load set — the hot
        // loop of this method.
        let tasks = &self.tasks;
        self.loads.update_batch_with(now, |tid| {
            let t = &tasks[tid];
            (t.state == TaskState::Runnable).then(|| t.cpu.map_or(0.0, |c| hw.freq_ratio(c)))
        });
        self.last_advance = now;
    }

    /// The earliest time any CPU's current quantum completes, given current
    /// frequencies; `None` when every CPU is idle.
    pub fn next_completion_time(&self, hw: &Hw<'_>, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for (cpu_idx, rq) in self.rqs.iter().enumerate() {
            if let Some(tid) = rq.current() {
                let t = &self.tasks[tid.0];
                if t.remaining.instructions() <= WORK_EPS_INSTRUCTIONS {
                    return Some(now);
                }
                let rate = hw.rate(&t.profile, CpuId(cpu_idx));
                let secs = t.remaining.instructions() / rate;
                let at = now + SimDuration::from_nanos((secs * 1e9).ceil() as u64);
                earliest = Some(earliest.map_or(at, |e| e.min(at)));
            }
        }
        earliest
    }

    /// Completes any quanta that have drained, running the owning tasks'
    /// next step exchanges and re-dispatching.
    pub fn handle_completions(&mut self, hw: &Hw<'_>, now: SimTime) {
        for cpu_idx in 0..self.rqs.len() {
            if let Some(tid) = self.rqs[cpu_idx].current() {
                if self.tasks[tid.0].remaining.instructions() <= WORK_EPS_INSTRUCTIONS {
                    self.rqs[cpu_idx].remove(tid);
                    self.tasks[tid.0].cpu = None;
                    self.exchange_step(tid, hw, now);
                }
            }
        }
        self.drain_pending_wakes(hw, now);
        self.dispatch_all();
    }

    // ---- hotplug ------------------------------------------------------------

    /// Reacts to a CPU going offline: the dying CPU's runqueue is drained
    /// and every queued task is rehomed onto a surviving CPU. Tasks pinned
    /// to the dying CPU — runnable, sleeping or blocked — have their
    /// affinity widened to [`Affinity::Any`], mirroring Linux
    /// `select_fallback_rq`, which breaks a task's mask rather than strand
    /// it ("no longer affine to cpuN").
    ///
    /// The platform state must already show the CPU offline (call
    /// `PlatformState::set_online` first); the one-little-always-online
    /// rule is enforced there, so the kernel always has somewhere to drain
    /// to.
    ///
    /// Returns the ids of the tasks that were rehomed.
    pub fn offline_cpu(&mut self, cpu: CpuId, hw: &Hw<'_>) -> Vec<TaskId> {
        debug_assert!(
            !hw.online(cpu),
            "offline_cpu: platform still shows {cpu} online"
        );
        for t in &mut self.tasks {
            if t.affinity == Affinity::Pinned(cpu) {
                t.affinity = Affinity::Any;
            }
        }
        let rq = &mut self.rqs[cpu.0];
        let mut drained: Vec<TaskId> = Vec::new();
        drained.extend(rq.current());
        drained.extend(rq.waiting().iter().copied());
        for tid in &drained {
            self.rqs[cpu.0].remove(*tid);
            self.tasks[tid.0].cpu = None;
        }
        for tid in &drained {
            let target = self.select_cpu(*tid, hw);
            self.tasks[tid.0].cpu = Some(target);
            self.tasks[tid.0].last_cpu = Some(target);
            self.rqs[target.0].enqueue(*tid);
        }
        self.dispatch_all();
        drained
    }

    /// Reacts to a CPU coming back online. The kernel keeps no per-CPU
    /// state that needs rebuilding — the runqueue sat empty while the CPU
    /// was down — so this only validates that invariant; the next tick's
    /// balancer and wake placement start using the CPU naturally.
    pub fn online_cpu(&mut self, cpu: CpuId, hw: &Hw<'_>) {
        debug_assert!(hw.online(cpu), "online_cpu: platform shows {cpu} offline");
        debug_assert!(
            self.rqs[cpu.0].is_empty(),
            "invariant: an offline cpu's runqueue must stay empty"
        );
    }

    /// Verifies the resilience layer's "never lose a task" guarantee:
    /// every runnable task is queued on exactly one runqueue, and no
    /// runqueue holds a non-runnable task.
    ///
    /// # Errors
    ///
    /// [`SimError::TaskLost`] describing the first violation — always a
    /// simulator bug if it fires.
    pub fn check_no_lost_tasks(&self) -> Result<(), SimError> {
        let mut queued = vec![0usize; self.tasks.len()];
        for (cpu, rq) in self.rqs.iter().enumerate() {
            for tid in rq.current().iter().chain(rq.waiting()) {
                queued[tid.0] += 1;
                if self.tasks[tid.0].state != TaskState::Runnable {
                    return Err(SimError::TaskLost {
                        task: tid.0,
                        detail: format!("{:?} task queued on cpu{cpu}", self.tasks[tid.0].state),
                    });
                }
            }
        }
        for (tid, count) in queued.iter().enumerate() {
            let runnable = self.tasks[tid].state == TaskState::Runnable;
            if runnable && *count != 1 {
                return Err(SimError::TaskLost {
                    task: tid,
                    detail: format!("runnable task on {count} runqueues (expected 1)"),
                });
            }
        }
        Ok(())
    }

    // ---- timers and wakes ---------------------------------------------------

    /// Delivers a sleep timer. Stale timers (the task was woken early or
    /// re-slept) are ignored via the sequence number.
    pub fn timer_wake(&mut self, tid: TaskId, seq: u64, hw: &Hw<'_>, now: SimTime) {
        if self.sleep_seq[tid.0] != seq || self.tasks[tid.0].state != TaskState::Sleeping {
            return;
        }
        self.wake_common(tid, hw, now);
    }

    /// Wakes a blocked or sleeping task from outside (input scripts, other
    /// tasks). If the task is currently runnable the wake is remembered and
    /// consumed when it next blocks — modeling a pending-event queue of
    /// depth one.
    pub fn wake_external(&mut self, tid: TaskId, hw: &Hw<'_>, now: SimTime) {
        match self.tasks[tid.0].state {
            TaskState::Blocked | TaskState::Sleeping => {
                self.sleep_seq[tid.0] += 1; // invalidate any pending timer
                self.wake_common(tid, hw, now);
            }
            TaskState::Runnable => {
                self.pending_wake_flag[tid.0] = true;
            }
            TaskState::Exited => {}
        }
    }

    fn wake_common(&mut self, tid: TaskId, hw: &Hw<'_>, now: SimTime) {
        // Linaro-HMP semantics: the load is not updated *during* sleep, but
        // the elapsed sleep decays it lazily at wakeup (contribution 0).
        self.loads.update(tid.0, now, 0.0);
        self.exchange_step(tid, hw, now);
        self.drain_pending_wakes(hw, now);
        self.dispatch_all();
    }

    // ---- periodic tick ------------------------------------------------------

    /// Scheduler tick: preemption, HMP migration, intra-cluster balancing.
    /// The driver must call [`Kernel::advance_to`] up to `now` first.
    pub fn tick(&mut self, hw: &Hw<'_>, now: SimTime) {
        debug_assert_eq!(self.last_advance, now, "tick without advance");
        self.preempt_all();
        match self.cfg.policy {
            AsymPolicy::Hmp(params) => self.hmp_migrate(hw, &params),
            AsymPolicy::EfficiencyBased { min_load } => self.efficiency_migrate(hw, min_load),
            AsymPolicy::ParallelismAware {
                serial_threshold,
                min_load,
            } => self.parallelism_migrate(hw, serial_threshold, min_load),
            AsymPolicy::Disabled => {}
        }
        if self.cfg.balance_enabled {
            self.balance(hw);
        }
        self.dispatch_all();
    }

    /// Round-robin fairness: on every tick each CPU re-dispatches the
    /// waiting task with the minimum vruntime (the current task yields if
    /// someone waits).
    fn preempt_all(&mut self) {
        for rq in &mut self.rqs {
            if !rq.waiting().is_empty() {
                rq.yield_current();
            }
        }
    }

    /// HMP up/down migration (paper Algorithm 1).
    fn hmp_migrate(&mut self, hw: &Hw<'_>, params: &HmpParams) {
        let topo = &hw.platform.topology;
        for tid in 0..self.tasks.len() {
            let t = &self.tasks[tid];
            if t.state != TaskState::Runnable || t.affinity != Affinity::Any {
                continue;
            }
            let Some(cpu) = t.cpu else { continue };
            let kind = topo.kind_of(cpu);
            let load = self.loads.value(tid);
            let target_kind = match kind {
                CoreKind::Little if load > params.up_threshold => CoreKind::Big,
                CoreKind::Big if load < params.down_threshold => CoreKind::Little,
                _ => continue,
            };
            let Some(target) = self.idlest_of_kind(hw, target_kind) else {
                continue;
            };
            self.move_task(TaskId(tid), target);
            match target_kind {
                CoreKind::Big => self.migrations_up += 1,
                CoreKind::Little => self.migrations_down += 1,
            }
        }
    }

    /// Big-core speedup estimate for a profile at each cluster's maximum
    /// frequency — exact in simulation, where the paper's schedulers would
    /// sample or model it.
    fn big_speedup(&self, hw: &Hw<'_>, profile: &WorkProfile) -> f64 {
        let topo = &hw.platform.topology;
        let (Some(lc), Some(bc)) = (
            topo.cluster_of_kind(CoreKind::Little),
            topo.cluster_of_kind(CoreKind::Big),
        ) else {
            return 1.0;
        };
        let big = hw.platform.perf.ips(
            profile,
            CoreKind::Big,
            &bc.l2,
            bc.core.opps.max_khz() as f64 / 1e6,
        );
        let little = hw.platform.perf.ips(
            profile,
            CoreKind::Little,
            &lc.l2,
            lc.core.opps.max_khz() as f64 / 1e6,
        );
        big / little
    }

    /// Runnable, freely migratable tasks with at least `min_load`.
    fn migratable_tasks(&self, min_load: f64) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|i| {
                let t = &self.tasks[*i];
                t.state == TaskState::Runnable
                    && t.affinity == Affinity::Any
                    && t.cpu.is_some()
                    && self.loads.value(*i) >= min_load
            })
            .map(TaskId)
            .collect()
    }

    fn move_to_kind(&mut self, hw: &Hw<'_>, tid: TaskId, kind: CoreKind) {
        let topo = &hw.platform.topology;
        let Some(cpu) = self.tasks[tid.0].cpu else {
            return;
        };
        if topo.kind_of(cpu) == kind {
            return;
        }
        let Some(target) = self.idlest_of_kind(hw, kind) else {
            return;
        };
        self.move_task(tid, target);
        match kind {
            CoreKind::Big => self.migrations_up += 1,
            CoreKind::Little => self.migrations_down += 1,
        }
    }

    /// Efficiency-based scheduling (paper §IV.A, Kumar et al.): the top-N
    /// loaded tasks by big-core speedup own the N online big cores.
    fn efficiency_migrate(&mut self, hw: &Hw<'_>, min_load: f64) {
        let n_big = hw.n_online_of_kind(CoreKind::Big);
        if n_big == 0 {
            return;
        }
        let mut ranked: Vec<(TaskId, f64)> = self
            .migratable_tasks(min_load)
            .into_iter()
            .map(|tid| {
                let s = self.big_speedup(hw, &self.tasks[tid.0].profile);
                (tid, s)
            })
            .collect();
        // total_cmp: a NaN speedup (degenerate profile) must not silently
        // compare Equal and scramble an otherwise strict ranking.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, (tid, _)) in ranked.into_iter().enumerate() {
            let kind = if i < n_big {
                CoreKind::Big
            } else {
                CoreKind::Little
            };
            self.move_to_kind(hw, tid, kind);
        }
    }

    /// Parallelism-aware scheduling (paper §IV.A, Saez et al.): serial
    /// phases (few runnable tasks) run on big cores to shorten the critical
    /// path; parallel phases spread over the energy-efficient little cores.
    fn parallelism_migrate(&mut self, hw: &Hw<'_>, serial_threshold: usize, min_load: f64) {
        let active = self.migratable_tasks(min_load);
        if active.is_empty() {
            return;
        }
        let target = if active.len() <= serial_threshold && hw.n_online_of_kind(CoreKind::Big) > 0 {
            CoreKind::Big
        } else {
            CoreKind::Little
        };
        for tid in active {
            self.move_to_kind(hw, tid, target);
        }
    }

    /// Moves waiting tasks from overloaded CPUs to idle CPUs of the same
    /// cluster.
    fn balance(&mut self, hw: &Hw<'_>) {
        let topo = &hw.platform.topology;
        let mut online = std::mem::take(&mut self.balance_scratch);
        for cluster in topo.clusters() {
            online.clear();
            online.extend(hw.iter_online_of_kind(cluster.core.kind));
            while let Some(idle) = online.iter().copied().find(|c| self.rqs[c.0].is_empty()) {
                // Busiest donor: a CPU that is both executing a task and has
                // waiters (a CPU with only waiters will self-dispatch).
                let Some(donor) = online
                    .iter()
                    .copied()
                    .filter(|c| self.rqs[c.0].len() >= 2 && !self.rqs[c.0].waiting().is_empty())
                    .max_by_key(|c| self.rqs[c.0].len())
                else {
                    break;
                };
                // Steal the heaviest *migratable* waiter (pinned tasks stay).
                let Some(stolen) = self.rqs[donor.0]
                    .waiting()
                    .iter()
                    .copied()
                    .filter(|t| !matches!(self.tasks[t.0].affinity, Affinity::Pinned(_)))
                    .max_by_key(|t| self.loads.value(t.0) as u64)
                else {
                    break;
                };
                self.rqs[donor.0].remove(stolen);
                self.tasks[stolen.0].cpu = Some(idle);
                self.tasks[stolen.0].last_cpu = Some(idle);
                self.rqs[idle.0].enqueue(stolen);
                // Dispatch immediately so the receiving CPU is no longer
                // idle (and never becomes a donor of the same task).
                let tasks = &self.tasks;
                self.rqs[idle.0].dispatch(|t| tasks[t.0].vruntime);
            }
        }
        self.balance_scratch = online;
        self.dispatch_all();
    }

    // ---- step exchange ------------------------------------------------------

    /// Runs the behavior until it produces a non-immediate step and applies
    /// it.
    fn exchange_step(&mut self, tid: TaskId, hw: &Hw<'_>, now: SimTime) {
        for _ in 0..MAX_IMMEDIATE_STEPS {
            let mut wakes = Vec::new();
            let mut behavior: Box<dyn TaskBehavior> =
                std::mem::replace(&mut self.tasks[tid.0].behavior, Box::new(NoopBehavior));
            let step = {
                let mut ctx = BehaviorCtx {
                    now,
                    wakes: &mut wakes,
                    signals: &mut self.signals,
                };
                behavior.next_step(&mut ctx)
            };
            self.tasks[tid.0].behavior = behavior;
            self.pending_wakes
                .extend(wakes.into_iter().filter(|w| *w != tid));

            match step {
                Step::Compute { work, profile } => {
                    if work.instructions() <= WORK_EPS_INSTRUCTIONS {
                        continue; // degenerate: ask again
                    }
                    let t = &mut self.tasks[tid.0];
                    t.remaining = work;
                    t.profile = profile;
                    t.state = TaskState::Runnable;
                    let cpu = self.select_cpu(tid, hw);
                    // Wake-time placement across core kinds is a migration
                    // too (HMP checks its thresholds in select_task_rq).
                    let topo = &hw.platform.topology;
                    if let Some(prev) = self.tasks[tid.0].last_cpu {
                        match (topo.kind_of(prev), topo.kind_of(cpu)) {
                            (CoreKind::Little, CoreKind::Big) => self.migrations_up += 1,
                            (CoreKind::Big, CoreKind::Little) => self.migrations_down += 1,
                            _ => {}
                        }
                    }
                    self.tasks[tid.0].cpu = Some(cpu);
                    self.tasks[tid.0].last_cpu = Some(cpu);
                    self.rqs[cpu.0].enqueue(tid);
                    return;
                }
                Step::Sleep(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.enter_sleep(tid, now + d);
                    return;
                }
                Step::SleepUntil(t) => {
                    if t <= now {
                        continue;
                    }
                    self.enter_sleep(tid, t);
                    return;
                }
                Step::Block => {
                    if self.pending_wake_flag[tid.0] {
                        // A wake arrived while we were runnable: consume it
                        // and ask for the next step immediately.
                        self.pending_wake_flag[tid.0] = false;
                        continue;
                    }
                    self.tasks[tid.0].state = TaskState::Blocked;
                    return;
                }
                Step::Exit => {
                    self.tasks[tid.0].state = TaskState::Exited;
                    return;
                }
            }
        }
        panic!(
            "task {} ({}) livelocked: {MAX_IMMEDIATE_STEPS} immediate steps",
            tid, self.tasks[tid.0].name
        );
    }

    fn enter_sleep(&mut self, tid: TaskId, wake_at: SimTime) {
        self.tasks[tid.0].state = TaskState::Sleeping;
        self.sleep_seq[tid.0] += 1;
        self.wake_requests.push(WakeRequest {
            tid,
            seq: self.sleep_seq[tid.0],
            at: wake_at,
        });
    }

    fn drain_pending_wakes(&mut self, hw: &Hw<'_>, now: SimTime) {
        while let Some(tid) = self.pending_wakes.pop() {
            self.wake_external(tid, hw, now);
        }
    }

    // ---- placement ---------------------------------------------------------

    /// Idlest online CPU of a kind, `None` when the whole side is off.
    ///
    /// `Iterator::min_by_key` keeps the *first* minimum and the key is made
    /// unique by the CPU id, so this picks exactly the CPU the old
    /// collect-then-scan version did — without the candidate `Vec`.
    fn idlest_of_kind(&self, hw: &Hw<'_>, kind: CoreKind) -> Option<CpuId> {
        hw.iter_online_of_kind(kind)
            .min_by_key(|c| (self.rqs[c.0].len(), c.0))
    }

    /// Idlest online CPU, preferring `kind` but degrading to the other
    /// side when a cluster is fully throttled off or hotplugged out.
    ///
    /// # Panics
    ///
    /// Panics only if *no* CPU is online — impossible while the platform's
    /// one-little-always-online invariant holds.
    fn fallback_cpu(&self, kind: CoreKind, hw: &Hw<'_>) -> CpuId {
        self.idlest_of_kind(hw, kind)
            .or_else(|| self.idlest_of_kind(hw, kind.other()))
            .expect("invariant violated: no online cpus (platform must keep one little online)")
    }

    fn select_cpu(&self, tid: TaskId, hw: &Hw<'_>) -> CpuId {
        let t = &self.tasks[tid.0];
        match t.affinity {
            Affinity::Pinned(cpu) => {
                if hw.online(cpu) {
                    cpu
                } else {
                    // Only reachable in the window between a CPU dying and
                    // `offline_cpu` widening its pins; place like Linux
                    // select_fallback_rq instead of stranding the task.
                    self.fallback_cpu(hw.platform.topology.kind_of(cpu), hw)
                }
            }
            Affinity::Kind(kind) => self.fallback_cpu(kind, hw),
            Affinity::Any => {
                // HMP-aware wake placement: cross-threshold loads pick the
                // matching side; otherwise the task returns to the side it
                // last ran on (cache affinity) — the tick-time down
                // migration is what later pulls a cooled-down task back to
                // little, exactly as on the real scheduler.
                let load = self.loads.value(tid.0);
                let last_kind = t.last_cpu.map(|c| hw.platform.topology.kind_of(c));
                let preferred = match self.cfg.policy {
                    AsymPolicy::Hmp(params) if load > params.up_threshold => CoreKind::Big,
                    AsymPolicy::Hmp(params) if load < params.down_threshold => CoreKind::Little,
                    // Efficiency/parallelism policies re-rank at every tick;
                    // wakes go back where the task last ran.
                    _ => last_kind.unwrap_or(CoreKind::Little),
                };
                // Wake affinity: stay on the previous CPU when it is still
                // idle and on the preferred side (CFS wake_affine); fall
                // back to the idlest CPU of the preferred side.
                if let Some(prev) = t.last_cpu {
                    if hw.online(prev)
                        && hw.platform.topology.kind_of(prev) == preferred
                        && self.rqs[prev.0].is_empty()
                    {
                        return prev;
                    }
                }
                self.fallback_cpu(preferred, hw)
            }
        }
    }

    fn move_task(&mut self, tid: TaskId, target: CpuId) {
        let Some(src) = self.tasks[tid.0].cpu else {
            return;
        };
        if src == target {
            return;
        }
        self.rqs[src.0].remove(tid);
        self.tasks[tid.0].cpu = Some(target);
        self.tasks[tid.0].last_cpu = Some(target);
        self.rqs[target.0].enqueue(tid);
    }

    fn dispatch_all(&mut self) {
        for rq in &mut self.rqs {
            let tasks = &self.tasks;
            rq.dispatch(|t| tasks[t.0].vruntime);
        }
    }

    // ---- observation ---------------------------------------------------------

    /// Per-CPU instantaneous activity for the power model: 0 when idle,
    /// the running task's profile energy intensity (≈1.0) otherwise.
    pub fn activity(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rqs.len());
        self.activity_into(&mut out);
        out
    }

    /// [`Kernel::activity`] into a caller-owned buffer (cleared first), for
    /// hot loops that read activity at every power sample.
    pub fn activity_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.rqs.iter().map(|rq| match rq.current() {
            Some(tid) => self.tasks[tid.0].profile.energy_intensity,
            None => 0.0,
        }));
    }

    /// True when no CPU is executing or queueing any task — the whole
    /// machine is idle and only timers/events can change that.
    pub fn all_idle(&self) -> bool {
        self.rqs.iter().all(|rq| rq.is_empty())
    }

    /// Busy-time counters for windowed readers.
    pub fn accounting(&self) -> &CpuAccounting {
        &self.acct
    }

    /// Pending wake timers for the driver to schedule (drains them).
    pub fn drain_wake_requests(&mut self) -> Vec<WakeRequest> {
        std::mem::take(&mut self.wake_requests)
    }

    /// [`Kernel::drain_wake_requests`] into a caller-owned buffer: the
    /// buffers swap, so capacity ping-pongs between kernel and driver and
    /// the steady-state loop never allocates.
    pub fn drain_wake_requests_into(&mut self, out: &mut Vec<WakeRequest>) {
        out.clear();
        std::mem::swap(out, &mut self.wake_requests);
    }

    /// Application signals emitted since the last drain.
    pub fn drain_signals(&mut self) -> Vec<(SimTime, AppSignal)> {
        std::mem::take(&mut self.signals)
    }

    /// [`Kernel::drain_signals`] into a caller-owned buffer (swap-based,
    /// allocation-free at steady state).
    pub fn drain_signals_into(&mut self, out: &mut Vec<(SimTime, AppSignal)>) {
        out.clear();
        std::mem::swap(out, &mut self.signals);
    }

    /// The task currently executing on `cpu`.
    pub fn current_task(&self, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].current()
    }

    /// Lifecycle state of a task.
    pub fn task_state(&self, tid: TaskId) -> TaskState {
        self.tasks[tid.0].state
    }

    /// Current HMP load of a task (0–1024).
    pub fn task_load(&self, tid: TaskId) -> f64 {
        self.loads.value(tid.0)
    }

    /// The whole population's load averages, indexed by task id — the
    /// batch read path behind reports and snapshot fingerprints.
    pub fn task_loads(&self) -> &[f64] {
        self.loads.values()
    }

    /// The CPU whose runqueue holds the task, if runnable.
    pub fn task_cpu(&self, tid: TaskId) -> Option<CpuId> {
        self.tasks[tid.0].cpu
    }

    /// Total CPU time a task has consumed.
    pub fn task_cpu_time(&self, tid: TaskId) -> SimDuration {
        self.tasks[tid.0].cpu_time
    }

    /// CPU time a task has consumed on each core kind.
    pub fn task_cpu_time_on(&self, tid: TaskId, kind: CoreKind) -> SimDuration {
        let idx = match kind {
            CoreKind::Little => 0,
            CoreKind::Big => 1,
        };
        self.tasks[tid.0].cpu_time_by_kind[idx]
    }

    /// Per-task summary rows: (name, total CPU time, little time, big time,
    /// current load), in spawn order — the thread-level breakdown behind
    /// the paper's per-app numbers.
    pub fn task_report(&self) -> Vec<TaskReportRow> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskReportRow {
                name: t.name.clone(),
                cpu_time: t.cpu_time,
                little_time: t.cpu_time_by_kind[0],
                big_time: t.cpu_time_by_kind[1],
                load: self.loads.value(i),
                state: t.state,
            })
            .collect()
    }

    /// Task name (diagnostics).
    pub fn task_name(&self, tid: TaskId) -> &str {
        &self.tasks[tid.0].name
    }

    /// Number of spawned tasks (including exited).
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Snapshot of the scheduler's task conservation state — the audit
    /// hook behind the runtime invariant auditor. Cheap (one pass over
    /// tasks and runqueues) so it can run at a high event cadence.
    pub fn census(&self) -> TaskCensus {
        let mut runnable = 0;
        let mut exited = 0;
        for t in &self.tasks {
            match t.state {
                TaskState::Runnable => runnable += 1,
                TaskState::Exited => exited += 1,
                TaskState::Sleeping | TaskState::Blocked => {}
            }
        }
        let queued = self
            .rqs
            .iter()
            .map(|rq| rq.current().iter().count() + rq.waiting().len())
            .sum();
        TaskCensus {
            spawned: self.tasks.len(),
            runnable,
            queued,
            exited,
        }
    }

    /// True when every task has exited.
    pub fn all_exited(&self) -> bool {
        self.tasks.iter().all(|t| t.state == TaskState::Exited)
    }

    /// Count of runnable tasks queued on `cpu`.
    pub fn n_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].len()
    }

    /// (up, down) HMP migration counts so far.
    pub fn migration_counts(&self) -> (u64, u64) {
        (self.migrations_up, self.migrations_down)
    }

    /// Tick period configured for this kernel.
    pub fn tick_period(&self) -> SimDuration {
        self.cfg.tick_period
    }

    // ---- snapshot / fork ----------------------------------------------------

    /// Produces an independent deep copy of the whole scheduler state for a
    /// forked simulation: runqueues, accounting, load averages, pending
    /// wakes/signals and every live task's behavior.
    ///
    /// Behaviors are duplicated through [`TaskBehavior::fork_box`], with
    /// shared handles (job queues, completion trackers) deduplicated via
    /// `ctx` so that tasks sharing a queue in the parent share *one* new
    /// queue in the fork. Exited tasks keep a no-op behavior — their
    /// original behavior can never run again, so its identity is
    /// irrelevant to determinism.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] naming the first live task whose
    /// behavior declines to fork (ad-hoc closure behaviors).
    pub fn fork(&self, ctx: &mut ForkCtx) -> Result<Kernel, SimError> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let behavior: Box<dyn TaskBehavior> = if t.state == TaskState::Exited {
                Box::new(NoopBehavior)
            } else {
                t.behavior
                    .fork_box(ctx)
                    .ok_or_else(|| SimError::SnapshotUnsupported {
                        detail: format!("task {} ({}) has an opaque behavior", i, t.name),
                    })?
            };
            tasks.push(TaskCb {
                name: t.name.clone(),
                state: t.state,
                behavior,
                affinity: t.affinity,
                remaining: t.remaining,
                profile: t.profile,
                cpu: t.cpu,
                last_cpu: t.last_cpu,
                vruntime: t.vruntime,
                cpu_time: t.cpu_time,
                cpu_time_by_kind: t.cpu_time_by_kind,
            });
        }
        Ok(Kernel {
            cfg: self.cfg,
            tasks,
            loads: self.loads.clone(),
            sleep_seq: self.sleep_seq.clone(),
            pending_wake_flag: self.pending_wake_flag.clone(),
            rqs: self.rqs.clone(),
            acct: self.acct.clone(),
            last_advance: self.last_advance,
            wake_requests: self.wake_requests.clone(),
            signals: self.signals.clone(),
            pending_wakes: self.pending_wakes.clone(),
            migrations_up: self.migrations_up,
            migrations_down: self.migrations_down,
            balance_scratch: Vec::with_capacity(self.rqs.len()),
        })
    }

    /// Captures the whole scheduler as a serializable [`KernelSaved`] —
    /// the persistent counterpart of [`Kernel::fork`]: runqueues,
    /// accounting, load averages, pending wakes/signals and every live
    /// task's behavior through [`TaskBehavior::save_box`].
    ///
    /// Exited tasks save no behavior (their original can never run again);
    /// they restore to a no-op, exactly as [`Kernel::fork`] treats them.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] naming the first live task whose
    /// behavior declines to save (ad-hoc closure behaviors).
    pub fn state_save(&self, ctx: &mut SaveCtx) -> Result<KernelSaved, SimError> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let behavior = if t.state == TaskState::Exited {
                None
            } else {
                Some(
                    t.behavior
                        .save_box(ctx)
                        .ok_or_else(|| SimError::SnapshotUnsupported {
                            detail: format!("task {} ({}) has an opaque behavior", i, t.name),
                        })?,
                )
            };
            tasks.push(TaskSaved {
                name: t.name.to_string(),
                state: t.state,
                behavior,
                affinity: t.affinity,
                remaining: t.remaining,
                profile: t.profile,
                cpu: t.cpu,
                last_cpu: t.last_cpu,
                vruntime: t.vruntime,
                cpu_time: t.cpu_time,
                little_time: t.cpu_time_by_kind[0],
                big_time: t.cpu_time_by_kind[1],
            });
        }
        Ok(KernelSaved {
            cfg: self.cfg,
            tasks,
            loads: self.loads.state_save(),
            sleep_seq: self.sleep_seq.clone(),
            pending_wake_flag: self.pending_wake_flag.clone(),
            rqs: self.rqs.clone(),
            acct: self.acct.clone(),
            last_advance: self.last_advance,
            wake_requests: self.wake_requests.clone(),
            signals: self.signals.clone(),
            pending_wakes: self.pending_wakes.clone(),
            migrations_up: self.migrations_up,
            migrations_down: self.migrations_down,
        })
    }

    /// Rebuilds a kernel from [`Kernel::state_save`] output. `restore`
    /// turns each task's [`BehaviorSaved`] back into a live behavior
    /// (the workload crate's dispatcher), deduplicating shared handles
    /// through `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates `restore` errors (an unknown dispatch tag, a malformed
    /// payload) verbatim.
    pub fn state_restore(
        saved: &KernelSaved,
        ctx: &mut RestoreCtx,
        mut restore: impl FnMut(
            &BehaviorSaved,
            &mut RestoreCtx,
        ) -> Result<Box<dyn TaskBehavior>, SimError>,
    ) -> Result<Kernel, SimError> {
        let mut tasks = Vec::with_capacity(saved.tasks.len());
        for t in &saved.tasks {
            let behavior: Box<dyn TaskBehavior> = match &t.behavior {
                Some(b) => restore(b, ctx)?,
                None => Box::new(NoopBehavior),
            };
            tasks.push(TaskCb {
                name: Arc::from(t.name.as_str()),
                state: t.state,
                behavior,
                affinity: t.affinity,
                remaining: t.remaining,
                profile: t.profile,
                cpu: t.cpu,
                last_cpu: t.last_cpu,
                vruntime: t.vruntime,
                cpu_time: t.cpu_time,
                cpu_time_by_kind: [t.little_time, t.big_time],
            });
        }
        saved.cfg.policy.assert_valid();
        Ok(Kernel {
            cfg: saved.cfg,
            tasks,
            loads: LoadSet::state_restore(&saved.loads),
            sleep_seq: saved.sleep_seq.clone(),
            pending_wake_flag: saved.pending_wake_flag.clone(),
            rqs: saved.rqs.clone(),
            acct: saved.acct.clone(),
            last_advance: saved.last_advance,
            wake_requests: saved.wake_requests.clone(),
            signals: saved.signals.clone(),
            pending_wakes: saved.pending_wakes.clone(),
            migrations_up: saved.migrations_up,
            migrations_down: saved.migrations_down,
            balance_scratch: Vec::with_capacity(saved.rqs.len()),
        })
    }

    /// Full load scale constant re-exported for convenience.
    pub const LOAD_SCALE: f64 = LOAD_SCALE;
}

/// Serialized form of one task control block within a [`KernelSaved`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TaskSaved {
    /// Task name.
    pub name: String,
    /// Lifecycle state.
    pub state: TaskState,
    /// Behavior payload; `None` only for exited tasks, which restore to a
    /// no-op behavior.
    pub behavior: Option<BehaviorSaved>,
    /// Placement constraint.
    pub affinity: Affinity,
    /// Remaining work of the current compute step.
    pub remaining: Work,
    /// Profile of the current compute step.
    pub profile: WorkProfile,
    /// CPU whose runqueue holds the task (valid while runnable).
    pub cpu: Option<CpuId>,
    /// Last CPU the task ran on (wake-placement cache affinity).
    pub last_cpu: Option<CpuId>,
    /// CFS-style virtual runtime in nanoseconds.
    pub vruntime: u64,
    /// Total CPU time consumed.
    pub cpu_time: SimDuration,
    /// CPU time consumed on little cores.
    pub little_time: SimDuration,
    /// CPU time consumed on big cores.
    pub big_time: SimDuration,
}

/// Serialized form of the whole scheduler, produced by
/// [`Kernel::state_save`] and consumed by [`Kernel::state_restore`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelSaved {
    /// Construction configuration.
    pub cfg: KernelConfig,
    /// Per-task control blocks in spawn order.
    pub tasks: Vec<TaskSaved>,
    /// Structure-of-arrays load averages, task-indexed.
    pub loads: LoadSetSaved,
    /// Sleep timer sequence numbers, task-indexed.
    pub sleep_seq: Vec<u64>,
    /// Pending-wake flags, task-indexed.
    pub pending_wake_flag: Vec<bool>,
    /// Per-CPU runqueues.
    pub rqs: Vec<RunQueue>,
    /// Per-CPU busy-time accounting.
    pub acct: CpuAccounting,
    /// Instant the kernel last advanced to.
    pub last_advance: SimTime,
    /// Wake timers not yet drained by the driver.
    pub wake_requests: Vec<WakeRequest>,
    /// Application signals not yet drained by the measurement layer.
    pub signals: Vec<(SimTime, AppSignal)>,
    /// Wakes queued during a step exchange, not yet delivered.
    pub pending_wakes: Vec<TaskId>,
    /// HMP up-migrations so far.
    pub migrations_up: u64,
    /// HMP down-migrations so far.
    pub migrations_down: u64,
}
