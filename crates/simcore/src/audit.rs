//! Opt-in runtime invariant auditing.
//!
//! [`InvariantGuard`] checks the simulator's conservation laws at a
//! configurable event cadence while a run executes:
//!
//! * **time-monotone** — simulated time never decreases;
//! * **task-conservation** — no task is lost or duplicated across
//!   runqueues (spawned counts only grow, and every runnable task is
//!   queued exactly once);
//! * **energy-monotone** — instantaneous power is never negative and the
//!   energy integral never decreases;
//! * **freq-cap** — the applied OPP of a cluster never exceeds its
//!   (thermal) frequency cap.
//!
//! The guard is deliberately substrate-agnostic: it consumes plain numbers
//! handed to it by the simulation driver (which reads them through audit
//! hooks on the kernel and power layers), so it lives here in `bl-simcore`
//! and is unit-testable without a full machine model. A violated invariant
//! becomes a typed [`SimError::InvariantViolated`] carrying the observed
//! and expected values — the run fails at the point of corruption instead
//! of emitting downstream garbage.

use crate::error::SimError;
use crate::time::SimTime;

/// Default audit cadence: one full check pass every this many events.
pub const DEFAULT_AUDIT_CADENCE: u64 = 256;

/// Stateful checker for the simulator's conservation laws.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InvariantGuard {
    cadence: u64,
    events_since_check: u64,
    last_time: SimTime,
    last_energy_mj: f64,
    last_spawned: usize,
    checks: u64,
}

impl InvariantGuard {
    /// Creates a guard checking every `cadence` events (`0` is clamped
    /// to 1: check on every event).
    pub fn new(cadence: u64) -> Self {
        InvariantGuard {
            cadence: cadence.max(1),
            events_since_check: 0,
            last_time: SimTime::ZERO,
            last_energy_mj: 0.0,
            last_spawned: 0,
            checks: 0,
        }
    }

    /// Books one event; true when a full check pass is due.
    pub fn due(&mut self) -> bool {
        self.events_since_check += 1;
        if self.events_since_check >= self.cadence {
            self.events_since_check = 0;
            true
        } else {
            false
        }
    }

    /// Number of completed check passes (reported in run telemetry).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Marks one full check pass as completed.
    pub fn pass_completed(&mut self) {
        self.checks += 1;
    }

    /// Simulated time must never decrease.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolated`] (`time-monotone`) when `now` is
    /// earlier than the previously observed instant.
    pub fn check_time(&mut self, now: SimTime) -> Result<(), SimError> {
        if now < self.last_time {
            return Err(violation(
                now,
                "time-monotone",
                format!(
                    "simulated time ran backwards: now={} ns < last-observed={} ns",
                    now.as_nanos(),
                    self.last_time.as_nanos()
                ),
            ));
        }
        self.last_time = now;
        Ok(())
    }

    /// No task may be lost or duplicated: the spawned count only grows and
    /// every runnable task sits on exactly one runqueue (so the number of
    /// queued tasks equals the number of runnable tasks).
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolated`] (`task-conservation`) on a census
    /// mismatch.
    pub fn check_task_conservation(
        &mut self,
        now: SimTime,
        spawned: usize,
        runnable: usize,
        queued: usize,
    ) -> Result<(), SimError> {
        if spawned < self.last_spawned {
            return Err(violation(
                now,
                "task-conservation",
                format!(
                    "spawned task count shrank: {spawned} < previously observed {}",
                    self.last_spawned
                ),
            ));
        }
        self.last_spawned = spawned;
        if queued != runnable {
            return Err(violation(
                now,
                "task-conservation",
                format!(
                    "{queued} tasks queued across runqueues but {runnable} runnable \
                     (every runnable task must be queued exactly once)"
                ),
            ));
        }
        Ok(())
    }

    /// Power must be non-negative and the energy integral non-decreasing.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolated`] (`energy-monotone`) on a negative
    /// instantaneous reading or a shrinking integral.
    pub fn check_energy(
        &mut self,
        now: SimTime,
        energy_mj: f64,
        current_mw: f64,
    ) -> Result<(), SimError> {
        if !current_mw.is_finite() || current_mw < 0.0 {
            return Err(violation(
                now,
                "energy-monotone",
                format!("instantaneous power is {current_mw} mW (must be finite and >= 0)"),
            ));
        }
        // A small absolute slack absorbs floating-point accumulation noise
        // in the time-weighted integral.
        if !energy_mj.is_finite() || energy_mj + 1e-9 < self.last_energy_mj {
            return Err(violation(
                now,
                "energy-monotone",
                format!(
                    "energy integral shrank: {energy_mj} mJ < previously observed {} mJ",
                    self.last_energy_mj
                ),
            ));
        }
        self.last_energy_mj = energy_mj.max(self.last_energy_mj);
        Ok(())
    }

    /// A cluster's applied OPP must respect its frequency cap.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolated`] (`freq-cap`) when `freq_khz`
    /// exceeds `cap_khz`.
    pub fn check_freq_cap(
        &self,
        now: SimTime,
        cluster: usize,
        freq_khz: u32,
        cap_khz: u32,
    ) -> Result<(), SimError> {
        if freq_khz > cap_khz {
            return Err(violation(
                now,
                "freq-cap",
                format!("cluster {cluster} runs at {freq_khz} kHz above its cap of {cap_khz} kHz"),
            ));
        }
        Ok(())
    }

    /// Test-only hook: corrupts the guard's notion of the last observed
    /// time so the next [`InvariantGuard::check_time`] fails — used to
    /// prove a deliberately broken accounting path is caught as
    /// [`SimError::InvariantViolated`].
    #[doc(hidden)]
    pub fn skew_clock_for_test(&mut self) {
        self.last_time = SimTime::MAX;
    }
}

impl Default for InvariantGuard {
    fn default() -> Self {
        InvariantGuard::new(DEFAULT_AUDIT_CADENCE)
    }
}

fn violation(at: SimTime, invariant: &str, detail: String) -> SimError {
    SimError::InvariantViolated {
        at,
        invariant: invariant.to_string(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_violates(result: Result<(), SimError>, expected_invariant: &str) {
        match result.unwrap_err() {
            SimError::InvariantViolated { invariant, .. } => {
                assert_eq!(invariant, expected_invariant)
            }
            other => panic!("expected InvariantViolated, got {other}"),
        }
    }

    #[test]
    fn cadence_spaces_check_passes() {
        let mut g = InvariantGuard::new(4);
        let due: Vec<bool> = (0..8).map(|_| g.due()).collect();
        assert_eq!(due, [false, false, false, true, false, false, false, true]);
        // Cadence 0 clamps to every-event checking.
        let mut every = InvariantGuard::new(0);
        assert!(every.due());
        assert!(every.due());
    }

    #[test]
    fn time_must_be_monotone() {
        let mut g = InvariantGuard::default();
        g.check_time(SimTime::from_millis(5)).unwrap();
        g.check_time(SimTime::from_millis(5)).unwrap(); // equal is fine
        assert_violates(g.check_time(SimTime::from_millis(4)), "time-monotone");
    }

    #[test]
    fn task_census_must_conserve() {
        let mut g = InvariantGuard::default();
        g.check_task_conservation(SimTime::ZERO, 3, 2, 2).unwrap();
        // A task duplicated onto two runqueues.
        assert_violates(
            g.check_task_conservation(SimTime::ZERO, 3, 2, 3),
            "task-conservation",
        );
        // A lost task.
        assert_violates(
            g.check_task_conservation(SimTime::ZERO, 3, 2, 1),
            "task-conservation",
        );
        // The spawned count shrinking.
        assert_violates(
            g.check_task_conservation(SimTime::ZERO, 2, 2, 2),
            "task-conservation",
        );
    }

    #[test]
    fn energy_must_not_shrink_or_go_negative() {
        let mut g = InvariantGuard::default();
        g.check_energy(SimTime::ZERO, 10.0, 500.0).unwrap();
        assert_violates(g.check_energy(SimTime::ZERO, 9.0, 500.0), "energy-monotone");
        let mut g = InvariantGuard::default();
        assert_violates(g.check_energy(SimTime::ZERO, 0.0, -1.0), "energy-monotone");
        let mut g = InvariantGuard::default();
        assert_violates(
            g.check_energy(SimTime::ZERO, f64::NAN, 0.0),
            "energy-monotone",
        );
    }

    #[test]
    fn applied_opp_must_respect_cap() {
        let g = InvariantGuard::default();
        g.check_freq_cap(SimTime::ZERO, 1, 1_400_000, 1_400_000)
            .unwrap();
        assert_violates(
            g.check_freq_cap(SimTime::ZERO, 1, 1_800_000, 1_400_000),
            "freq-cap",
        );
    }

    #[test]
    fn skewed_clock_is_caught() {
        let mut g = InvariantGuard::default();
        g.check_time(SimTime::from_secs(1)).unwrap();
        g.skew_clock_for_test();
        assert_violates(g.check_time(SimTime::from_secs(2)), "time-monotone");
    }
}
