//! Deterministic random number generation for workload models.
//!
//! [`SimRng`] wraps a self-contained ChaCha8 stream cipher RNG, which is
//! seedable, portable and stable across library versions — the algorithm
//! lives in this file, so no external crate release can ever change the
//! stream. All stochastic draws in the simulator flow through this type so
//! a single `u64` seed reproduces an entire experiment.
//!
//! The distribution helpers here (uniform, exponential, log-normal, normal,
//! Bernoulli, Pareto) are implemented directly from inverse-CDF /
//! Box–Muller formulas to avoid an extra dependency on `rand_distr`.

use crate::time::SimDuration;

/// Self-contained ChaCha8 keystream generator.
///
/// The 64-bit seed is expanded into the 256-bit key with splitmix64; the
/// block counter occupies state words 12–13 and the nonce words 14–15 are
/// zero, giving a 2^70-byte period per seed — far beyond any simulation.
#[derive(Debug, Clone)]
struct ChaCha8Core {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the per-scenario seed used by sweep batches: the
/// `(index + 1)`-th splitmix64 output of the stream starting at
/// `base_seed`. Pure and order-free, so scenario *k* gets the same seed
/// whether the batch runs serially or across any number of workers, and
/// distinct indices land in uncorrelated regions of seed space.
pub fn derive_seed(base_seed: u64, index: u64) -> u64 {
    let mut state = base_seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

impl ChaCha8Core {
    fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Core {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants per the ChaCha specification.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, start) in s.iter_mut().zip(init) {
            *out = out.wrapping_add(start);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    fn next_u64(&mut self) -> u64 {
        // u64s are always served from an even word index, so a full pair is
        // available whenever idx < 16.
        if self.idx >= 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

/// Serializable image of a [`SimRng`]'s complete internal state: the
/// expanded key, block counter, buffered keystream words and read
/// position. Restoring it resumes the stream exactly where it left off.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RngState {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: u64,
}

/// Deterministic simulation RNG with the distribution helpers used by the
/// workload models.
///
/// ```
/// use bl_simcore::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Core,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Core::new(seed),
        }
    }

    /// Derives an independent child RNG; used to give each task its own
    /// stream so adding a task does not perturb the draws of others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        // 53 random mantissa bits -> uniform double in [0,1).
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform: lo > hi");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "uniform_usize: empty range");
        let span = (hi - lo) as u128;
        // Widening-multiply range reduction (Lemire): unbiased enough for
        // simulation purposes and branch-free.
        lo + ((self.inner.next_u64() as u128 * span) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential: non-positive mean");
        let u = 1.0 - self.uniform01(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform01();
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "normal: negative sigma");
        mu + sigma * self.standard_normal()
    }

    /// Log-normal draw parameterized by the *median* and the shape `sigma`
    /// (the standard deviation of the underlying normal).
    ///
    /// Interactive CPU bursts are heavy-tailed; log-normal is the standard
    /// choice for modeling them.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0, "lognormal: non-positive median");
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// Pareto draw with minimum `xm` and shape `alpha` (inverse-CDF method).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0, "pareto: invalid parameters");
        let u = 1.0 - self.uniform01();
        xm / u.powf(1.0 / alpha)
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Log-normally distributed duration with the given median and shape.
    pub fn lognormal_duration(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.lognormal(median.as_secs_f64(), sigma))
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.uniform(lo.as_secs_f64(), hi.as_secs_f64()))
    }

    /// Captures the generator's full internal state for persistence. The
    /// counterpart [`SimRng::state_restore`] rebuilds a generator that
    /// produces the identical stream from the identical position.
    pub fn state_save(&self) -> RngState {
        RngState {
            key: self.inner.key,
            counter: self.inner.counter,
            buf: self.inner.buf,
            idx: self.inner.idx as u64,
        }
    }

    /// Rebuilds a generator from a saved state. The restored stream is
    /// bit-identical to the original from its saved position onward.
    pub fn state_restore(state: &RngState) -> SimRng {
        SimRng {
            inner: ChaCha8Core {
                key: state.key,
                counter: state.counter,
                buf: state.buf,
                // Clamp so a corrupted index can never read out of bounds;
                // 16 simply forces a refill on the next draw.
                idx: (state.idx as usize).min(16),
            },
        }
    }

    /// A 64-bit digest of the generator's full internal state (key, block
    /// counter, buffered words and read position). Two generators with
    /// equal digests produce identical streams forever, so snapshot
    /// fingerprints can include the RNG without exposing its internals.
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut mix = |w: u64| {
            for byte in w.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        for pair in self.inner.key.chunks_exact(2) {
            mix(pair[0] as u64 | ((pair[1] as u64) << 32));
        }
        mix(self.inner.counter);
        for pair in self.inner.buf.chunks_exact(2) {
            mix(pair[0] as u64 | ((pair[1] as u64) << 32));
        }
        mix(self.inner.idx as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn chacha_keystream_matches_reference_structure() {
        // The first block must differ from the second (counter advances),
        // and word pairs must pack little-end-first into u64s.
        let mut r = SimRng::seed_from(0);
        let first: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(first, second);
        let mut again = SimRng::seed_from(0);
        assert_eq!(first[0], again.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Forking with a different salt gives a different stream.
        let mut c = SimRng::seed_from(9);
        let mut fc = c.fork(2);
        assert_ne!(fa.next_u64(), fc.next_u64());
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.uniform01();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform01_mean_near_half() {
        let mut r = SimRng::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform01()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut r = SimRng::seed_from(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x = r.uniform_usize(2, 10);
            assert!((2..10).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(6);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = SimRng::seed_from(7);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(5.0, 0.8)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 5.0).abs() < 0.2, "median = {median}");
    }

    #[test]
    fn pareto_minimum_respected() {
        let mut r = SimRng::seed_from(8);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(9);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn state_digest_tracks_stream_position() {
        let mut a = SimRng::seed_from(12);
        let b = a.clone();
        assert_eq!(a.state_digest(), b.state_digest());
        a.next_u64();
        assert_ne!(a.state_digest(), b.state_digest());
        // Replaying the same draw from the clone converges the digests.
        let mut b = b;
        b.next_u64();
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn state_save_restore_resumes_stream() {
        let mut a = SimRng::seed_from(13);
        for _ in 0..5 {
            a.next_u64();
        }
        let saved = a.state_save();
        let mut b = SimRng::state_restore(&saved);
        assert_eq!(a.state_digest(), b.state_digest());
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And through the serde layer: the state survives a JSON round trip.
        let json = serde_json::to_string(&saved).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, saved);
    }

    #[test]
    fn duration_helpers() {
        let mut r = SimRng::seed_from(10);
        let d = r.uniform_duration(SimDuration::from_millis(1), SimDuration::from_millis(2));
        assert!(d >= SimDuration::from_millis(1) && d < SimDuration::from_millis(2));
        let e = r.exp_duration(SimDuration::from_millis(5));
        assert!(e >= SimDuration::ZERO);
    }
}
