//! Lease-based sharding of a batch across worker *processes*.
//!
//! One host runs out of runway at `host_parallelism`, and a single sweep
//! process is a single point of failure for an entire batch. This module
//! holds the process-agnostic half of the fix: a coordinator partitions a
//! batch of `n` work items into contiguous index ranges ([`partition`]) and
//! tracks who owns each range on a [`LeaseBoard`] with **expiring,
//! heartbeat-renewed leases**. The coordinator/worker *runtime* (process
//! spawning, pipes, journals) lives in the `biglittle` crate's sweep
//! engine; everything here is pure state-machine code so the full lease
//! lifecycle — including a wedged worker whose lease expires — is unit
//! testable without spawning a single process.
//!
//! The lease lifecycle (see DESIGN.md §3.3):
//!
//! ```text
//!          grant                 complete
//!   Open ────────▶ Leased{w,e} ────────────▶ Done
//!    ▲               │ heartbeat: deadline pushed out
//!    │               │
//!    │               │ deadline passes / worker dies
//!    │               ▼
//!    └──────── reclaimed (attempts += 0; counted at grant)
//!                    │
//!                    │ attempts ≥ max_attempts
//!                    ▼
//!               Quarantined
//! ```
//!
//! Every grant carries a fresh, globally-unique **epoch**; heartbeats and
//! completions from a worker whose lease was reclaimed carry a stale epoch
//! and are rejected, so a zombie worker that wakes up after reclamation
//! cannot corrupt the board. Time is passed in explicitly (milliseconds on
//! any monotonic clock), never read from the wall — which is what makes
//! the expiry paths deterministic under test.

use serde::{Deserialize, Serialize};

/// Index of a range on the board.
pub type RangeId = usize;
/// Index of a worker process in the fleet.
pub type WorkerId = usize;

/// Splits `n` items into contiguous `[start, end)` chunks of at most
/// `chunk` items. `chunk == 0` is treated as 1.
///
/// ```
/// use bl_simcore::shard::partition;
/// assert_eq!(partition(7, 3), vec![(0, 3), (3, 6), (6, 7)]);
/// assert_eq!(partition(0, 3), Vec::<(usize, usize)>::new());
/// ```
pub fn partition(n: usize, chunk: usize) -> Vec<(usize, usize)> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push((start, end));
        start = end;
    }
    out
}

/// Where a range is in its lease lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Not currently leased; available for granting.
    Open,
    /// Leased to a worker until `deadline_ms` (renewed by heartbeats).
    Leased {
        /// The worker holding the lease.
        worker: WorkerId,
        /// The grant's unique epoch; stale-epoch messages are rejected.
        epoch: u64,
        /// When the lease expires if not renewed, in board-clock ms.
        deadline_ms: u64,
    },
    /// Every item in the range has been executed and published.
    Done,
    /// The range kept killing or stalling its workers and was retired;
    /// its items fail with a typed error instead of the batch dying.
    Quarantined,
}

/// One contiguous range of the batch and its lease bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RangeLease {
    /// The `[start, end)` item indices this range covers.
    pub range: (usize, usize),
    /// Current lifecycle state.
    pub state: LeaseState,
    /// Times the range has been granted (first grant included).
    pub attempts: u32,
}

/// Monotonic counters over everything the board has done — surfaced in
/// sweep statistics so an operator can see how rough the batch was.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCounters {
    /// Leases granted, re-grants included.
    pub leases_granted: u64,
    /// Leases reclaimed because the heartbeat deadline passed.
    pub reclaimed_expired: u64,
    /// Leases reclaimed because the owning worker died.
    pub reclaimed_dead: u64,
    /// Grants of a range that had already been granted before (re-leases
    /// after a reclaim).
    pub releases: u64,
    /// Ranges retired after exhausting their attempt budget.
    pub ranges_quarantined: u64,
}

/// The coordinator's view of every range lease in a batch.
///
/// The board never blocks and never reads a clock: callers feed it events
/// (`grant`, `heartbeat`, `complete`, `reclaim_*`) with explicit
/// timestamps and poll [`LeaseBoard::all_settled`] to learn when the batch
/// is finished (every range `Done` or `Quarantined`).
#[derive(Debug)]
pub struct LeaseBoard {
    ranges: Vec<RangeLease>,
    lease_ms: u64,
    max_attempts: u32,
    next_epoch: u64,
    counters: ShardCounters,
}

impl LeaseBoard {
    /// A board over `ranges` whose leases expire `lease_ms` after the last
    /// heartbeat, quarantining a range after `max_attempts` grants (clamped
    /// to at least 1).
    pub fn new(ranges: Vec<(usize, usize)>, lease_ms: u64, max_attempts: u32) -> LeaseBoard {
        LeaseBoard {
            ranges: ranges
                .into_iter()
                .map(|range| RangeLease {
                    range,
                    state: LeaseState::Open,
                    attempts: 0,
                })
                .collect(),
            lease_ms,
            max_attempts: max_attempts.max(1),
            next_epoch: 0,
            counters: ShardCounters::default(),
        }
    }

    /// Leases the next open range to `worker`, returning
    /// `(range id, [start, end), epoch)`, or `None` when no range is
    /// currently grantable (all leased, done, or quarantined).
    pub fn grant(
        &mut self,
        worker: WorkerId,
        now_ms: u64,
    ) -> Option<(RangeId, (usize, usize), u64)> {
        let rid = self
            .ranges
            .iter()
            .position(|r| r.state == LeaseState::Open)?;
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let r = &mut self.ranges[rid];
        if r.attempts > 0 {
            self.counters.releases += 1;
        }
        r.attempts += 1;
        r.state = LeaseState::Leased {
            worker,
            epoch,
            deadline_ms: now_ms + self.lease_ms,
        };
        self.counters.leases_granted += 1;
        Some((rid, r.range, epoch))
    }

    /// Renews the lease deadline. Returns `false` (and changes nothing)
    /// when `(worker, epoch)` no longer hold the lease — the heartbeat of
    /// a zombie whose range was reclaimed.
    pub fn heartbeat(&mut self, worker: WorkerId, rid: RangeId, epoch: u64, now_ms: u64) -> bool {
        match self.ranges.get_mut(rid) {
            Some(r) => match &mut r.state {
                LeaseState::Leased {
                    worker: w,
                    epoch: e,
                    deadline_ms,
                } if *w == worker && *e == epoch => {
                    *deadline_ms = now_ms + self.lease_ms;
                    true
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Marks the range complete. Returns `false` when `(worker, epoch)` no
    /// longer hold the lease; a reclaimed range completed by its original
    /// (presumed-dead) worker stays with whoever holds it now.
    pub fn complete(&mut self, worker: WorkerId, rid: RangeId, epoch: u64) -> bool {
        match self.ranges.get_mut(rid) {
            Some(r) => match r.state {
                LeaseState::Leased {
                    worker: w,
                    epoch: e,
                    ..
                } if w == worker && e == epoch => {
                    r.state = LeaseState::Done;
                    true
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Reclaims every lease whose deadline has passed, returning the
    /// `(range, worker)` pairs reclaimed. Ranges out of attempts move to
    /// `Quarantined`, the rest back to `Open` for re-leasing.
    pub fn reclaim_expired(&mut self, now_ms: u64) -> Vec<(RangeId, WorkerId)> {
        let mut reclaimed = Vec::new();
        for rid in 0..self.ranges.len() {
            if let LeaseState::Leased {
                worker,
                deadline_ms,
                ..
            } = self.ranges[rid].state
            {
                if now_ms >= deadline_ms {
                    self.counters.reclaimed_expired += 1;
                    self.reopen(rid);
                    reclaimed.push((rid, worker));
                }
            }
        }
        reclaimed
    }

    /// Reclaims every lease held by `worker` (it died), returning the
    /// reclaimed range ids.
    pub fn reclaim_worker(&mut self, worker: WorkerId) -> Vec<RangeId> {
        let mut reclaimed = Vec::new();
        for rid in 0..self.ranges.len() {
            if matches!(self.ranges[rid].state, LeaseState::Leased { worker: w, .. } if w == worker)
            {
                self.counters.reclaimed_dead += 1;
                self.reopen(rid);
                reclaimed.push(rid);
            }
        }
        reclaimed
    }

    /// Quarantines every range that is not `Done` — the last-resort path
    /// when the whole fleet died and nothing can make progress.
    pub fn quarantine_unfinished(&mut self) -> Vec<RangeId> {
        let mut retired = Vec::new();
        for rid in 0..self.ranges.len() {
            let r = &mut self.ranges[rid];
            if !matches!(r.state, LeaseState::Done | LeaseState::Quarantined) {
                r.state = LeaseState::Quarantined;
                self.counters.ranges_quarantined += 1;
                retired.push(rid);
            }
        }
        retired
    }

    /// Puts a reclaimed range back in play, or retires it when its attempt
    /// budget is spent.
    fn reopen(&mut self, rid: RangeId) {
        let max = self.max_attempts;
        let r = &mut self.ranges[rid];
        if r.attempts >= max {
            r.state = LeaseState::Quarantined;
            self.counters.ranges_quarantined += 1;
        } else {
            r.state = LeaseState::Open;
        }
    }

    /// Whether any range is currently grantable.
    pub fn has_open_work(&self) -> bool {
        self.ranges.iter().any(|r| r.state == LeaseState::Open)
    }

    /// Whether every range is `Done` or `Quarantined`.
    pub fn all_settled(&self) -> bool {
        self.ranges
            .iter()
            .all(|r| matches!(r.state, LeaseState::Done | LeaseState::Quarantined))
    }

    /// The ranges in quarantine, as `(range id, [start, end), attempts)`.
    pub fn quarantined(&self) -> Vec<(RangeId, (usize, usize), u32)> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state == LeaseState::Quarantined)
            .map(|(rid, r)| (rid, r.range, r.attempts))
            .collect()
    }

    /// Every range lease, for persistence/observability snapshots.
    pub fn leases(&self) -> &[RangeLease] {
        &self.ranges
    }

    /// The board's activity counters so far.
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }
}

// ---- wire protocol ---------------------------------------------------------
//
// The coordinator and its workers speak a line-oriented text protocol over
// the workers' stdin/stdout pipes. One message per line, fields
// space-separated, nothing quoted — results never travel on the pipe (they
// go through the per-worker journals), so the protocol stays trivially
// parseable and versioning-free.

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Execute batch items `[start, end)` under `(range, epoch)`.
    Lease {
        /// Range id on the coordinator's board.
        range: RangeId,
        /// First batch index of the range.
        start: usize,
        /// One past the last batch index.
        end: usize,
        /// The grant's epoch, echoed back in heartbeats/completions.
        epoch: u64,
    },
    /// No more work will come; exit cleanly.
    Shutdown,
}

impl ToWorker {
    /// Renders the message as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ToWorker::Lease {
                range,
                start,
                end,
                epoch,
            } => format!("lease {range} {start} {end} {epoch}"),
            ToWorker::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parses one protocol line; `None` for anything malformed (a torn or
    /// foreign line must never crash a worker).
    pub fn parse(line: &str) -> Option<ToWorker> {
        let mut f = line.split_ascii_whitespace();
        match f.next()? {
            "lease" => {
                let range = f.next()?.parse().ok()?;
                let start = f.next()?.parse().ok()?;
                let end = f.next()?.parse().ok()?;
                let epoch = f.next()?.parse().ok()?;
                (f.next().is_none() && start <= end).then_some(ToWorker::Lease {
                    range,
                    start,
                    end,
                    epoch,
                })
            }
            "shutdown" => f.next().is_none().then_some(ToWorker::Shutdown),
            _ => None,
        }
    }
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromWorker {
    /// The worker started and is ready for its first lease.
    Ready {
        /// The worker's fleet id.
        worker: WorkerId,
    },
    /// The worker is alive and still executing `(range, epoch)`.
    Heartbeat {
        /// The worker's fleet id.
        worker: WorkerId,
        /// The range being executed.
        range: RangeId,
        /// The lease's epoch.
        epoch: u64,
    },
    /// Every item of `(range, epoch)` is executed and journaled.
    RangeDone {
        /// The worker's fleet id.
        worker: WorkerId,
        /// The completed range.
        range: RangeId,
        /// The lease's epoch.
        epoch: u64,
    },
}

impl FromWorker {
    /// Renders the message as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            FromWorker::Ready { worker } => format!("ready {worker}"),
            FromWorker::Heartbeat {
                worker,
                range,
                epoch,
            } => format!("hb {worker} {range} {epoch}"),
            FromWorker::RangeDone {
                worker,
                range,
                epoch,
            } => format!("done {worker} {range} {epoch}"),
        }
    }

    /// Parses one protocol line; `None` for anything malformed (workers
    /// share stdout with nothing, but a half-written line from a killed
    /// worker must parse as garbage, not as a message).
    pub fn parse(line: &str) -> Option<FromWorker> {
        let mut f = line.split_ascii_whitespace();
        let msg = match f.next()? {
            "ready" => FromWorker::Ready {
                worker: f.next()?.parse().ok()?,
            },
            "hb" => FromWorker::Heartbeat {
                worker: f.next()?.parse().ok()?,
                range: f.next()?.parse().ok()?,
                epoch: f.next()?.parse().ok()?,
            },
            "done" => FromWorker::RangeDone {
                worker: f.next()?.parse().ok()?,
                range: f.next()?.parse().ok()?,
                epoch: f.next()?.parse().ok()?,
            },
            _ => return None,
        };
        f.next().is_none().then_some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly_once() {
        for n in [0usize, 1, 5, 16, 17] {
            for chunk in [0usize, 1, 3, 16, 100] {
                let ranges = partition(n, chunk);
                let mut covered = 0;
                let mut expect_start = 0;
                for (s, e) in &ranges {
                    assert_eq!(*s, expect_start, "ranges must be contiguous");
                    assert!(e > s, "ranges must be non-empty");
                    assert!(e - s <= chunk.max(1));
                    covered += e - s;
                    expect_start = *e;
                }
                assert_eq!(covered, n, "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn lease_lifecycle_happy_path() {
        let mut b = LeaseBoard::new(partition(6, 3), 1_000, 3);
        let (r0, span0, e0) = b.grant(0, 0).unwrap();
        let (r1, span1, e1) = b.grant(1, 0).unwrap();
        assert_eq!((span0, span1), ((0, 3), (3, 6)));
        assert_ne!(e0, e1, "every grant gets a fresh epoch");
        assert!(b.grant(2, 0).is_none(), "no third range to lease");
        assert!(b.heartbeat(0, r0, e0, 500));
        assert!(b.complete(0, r0, e0));
        assert!(b.complete(1, r1, e1));
        assert!(b.all_settled());
        assert_eq!(b.counters().leases_granted, 2);
        assert_eq!(b.counters().reclaimed_expired, 0);
        assert_eq!(b.counters().releases, 0);
    }

    /// The satellite case: a wedged worker takes a lease, stops
    /// heartbeating, and its range must be reclaimed at the deadline and
    /// re-leased to a survivor — with the zombie's late messages rejected.
    #[test]
    fn wedged_worker_lease_expires_and_is_releleased() {
        let mut b = LeaseBoard::new(partition(4, 2), 1_000, 3);
        let (rid, _, stale_epoch) = b.grant(0, 0).unwrap();

        // Heartbeats keep the lease alive past the original deadline...
        assert!(b.heartbeat(0, rid, stale_epoch, 900));
        assert!(b.reclaim_expired(1_500).is_empty(), "renewed at 900");

        // ...then worker 0 wedges: no heartbeat, deadline 1900 passes.
        let reclaimed = b.reclaim_expired(1_900);
        assert_eq!(reclaimed, vec![(rid, 0)]);
        assert!(b.has_open_work(), "the range went back to Open");

        // A survivor picks it up under a fresh epoch.
        let (rid2, _, fresh_epoch) = b.grant(1, 2_000).unwrap();
        assert_eq!(rid2, rid);
        assert_ne!(fresh_epoch, stale_epoch);

        // The zombie wakes up: its stale-epoch messages change nothing.
        assert!(!b.heartbeat(0, rid, stale_epoch, 2_100));
        assert!(!b.complete(0, rid, stale_epoch));

        // The survivor finishes the range for real.
        assert!(b.complete(1, rid, fresh_epoch));
        assert!(!b.all_settled(), "one range left");
        assert_eq!(b.counters().reclaimed_expired, 1);
        assert_eq!(b.counters().releases, 1);
    }

    #[test]
    fn repeated_reclaims_quarantine_the_range() {
        let mut b = LeaseBoard::new(partition(1, 1), 100, 2);
        for attempt in 0..2u64 {
            let now = attempt * 1_000;
            let (rid, _, _) = b.grant(0, now).unwrap();
            assert_eq!(rid, 0);
            assert_eq!(b.reclaim_expired(now + 100), vec![(0, 0)]);
        }
        // Two grants spent the attempt budget: quarantined, not open.
        assert!(!b.has_open_work());
        assert!(b.grant(1, 9_999).is_none());
        assert!(b.all_settled());
        assert_eq!(b.quarantined(), vec![(0, (0, 1), 2)]);
        assert_eq!(b.counters().ranges_quarantined, 1);
        assert_eq!(b.counters().releases, 1);
    }

    #[test]
    fn worker_death_reclaims_only_its_leases() {
        let mut b = LeaseBoard::new(partition(4, 2), 1_000, 3);
        let (r0, _, _) = b.grant(0, 0).unwrap();
        let (r1, _, e1) = b.grant(1, 0).unwrap();
        assert_eq!(b.reclaim_worker(0), vec![r0]);
        assert_eq!(b.counters().reclaimed_dead, 1);
        // Worker 1's lease is untouched.
        assert!(b.heartbeat(1, r1, e1, 500));
        // The dead worker's range is grantable again.
        let (r0_again, _, _) = b.grant(1, 600).unwrap();
        assert_eq!(r0_again, r0);
    }

    #[test]
    fn quarantine_unfinished_settles_everything() {
        let mut b = LeaseBoard::new(partition(4, 2), 1_000, 3);
        let (r0, _, e0) = b.grant(0, 0).unwrap();
        assert!(b.complete(0, r0, e0));
        let retired = b.quarantine_unfinished();
        assert_eq!(retired.len(), 1, "only the non-done range retires");
        assert!(b.all_settled());
        assert_eq!(b.quarantined().len(), 1);
    }

    #[test]
    fn protocol_round_trips() {
        let to = [
            ToWorker::Lease {
                range: 3,
                start: 12,
                end: 20,
                epoch: 7,
            },
            ToWorker::Shutdown,
        ];
        for m in to {
            assert_eq!(ToWorker::parse(&m.to_line()), Some(m));
        }
        let from = [
            FromWorker::Ready { worker: 2 },
            FromWorker::Heartbeat {
                worker: 2,
                range: 3,
                epoch: 7,
            },
            FromWorker::RangeDone {
                worker: 2,
                range: 3,
                epoch: 7,
            },
        ];
        for m in from {
            assert_eq!(FromWorker::parse(&m.to_line()), Some(m));
        }
    }

    #[test]
    fn malformed_protocol_lines_are_rejected() {
        for line in [
            "",
            "lease",
            "lease 1 2",
            "lease 1 5 2 0",   // start > end
            "lease 1 2 3 4 5", // trailing field
            "done 1 2",
            "hb x 0 0",
            "launch-the-missiles",
        ] {
            assert_eq!(ToWorker::parse(line), None, "{line:?}");
            assert_eq!(FromWorker::parse(line), None, "{line:?}");
        }
        assert_eq!(
            ToWorker::parse("lease 1 2 2 0"),
            Some(ToWorker::Lease {
                range: 1,
                start: 2,
                end: 2,
                epoch: 0
            }),
            "empty ranges are well-formed"
        );
    }
}
