//! A crash-safe, line-oriented write-ahead journal.
//!
//! The sweep supervisor records scenario start/finish events here so a
//! killed process can resume a batch without recomputing finished work.
//! Durability model:
//!
//! * every **append rewrites the whole file through a temp file + atomic
//!   rename** (then fsyncs the file and its directory), so readers — and a
//!   process restarted after `SIGKILL` — always observe a complete,
//!   prefix-consistent journal, never a torn write;
//! * every record line is framed as `<16-hex FNV-1a> <payload>`; lines
//!   whose checksum does not match (e.g. hand-edited or damaged storage)
//!   are dropped on load instead of poisoning the resume.
//!
//! Journals are small (one line per scenario attempt/finish in a batch),
//! so the rewrite-on-append cost is negligible next to a single
//! simulation run.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over a byte slice — the workspace's standard content
/// hash (cache keys, journal framing, batch keys).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Best-effort fsync of a directory so a just-renamed file inside it
/// survives power loss on filesystems where rename alone is not durable.
/// Failures are ignored (some platforms cannot fsync directories).
pub fn fsync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

/// An append-only journal of checksummed text records.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<String>,
}

impl Journal {
    /// Opens the journal at `path`.
    ///
    /// With `resume = false` any existing journal is discarded and the
    /// batch starts fresh. With `resume = true` existing records are
    /// loaded (corrupt lines dropped) and subsequent appends extend them.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the parent directory or removing a
    /// stale journal; a missing file on resume is not an error.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> io::Result<Journal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut records = Vec::new();
        if resume {
            match fs::read_to_string(&path) {
                Ok(text) => {
                    records = text.lines().filter_map(unframe).collect();
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        } else if path.exists() {
            // A stale journal entry path may even be a directory left by
            // outside interference; clear either form.
            if path.is_dir() {
                fs::remove_dir_all(&path)?;
            } else {
                fs::remove_file(&path)?;
            }
        }
        Ok(Journal { path, records })
    }

    /// The records currently in the journal, in append order.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (newlines inside `payload` are rejected — one
    /// record is one line) and makes it durable via temp file + rename +
    /// directory fsync.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; `InvalidInput` for a multi-line payload.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        self.append_all(std::slice::from_ref(&payload.to_string()))
    }

    /// Appends a batch of records with a **single** rewrite + fsync — the
    /// bulk form the sharded-sweep coordinator uses when merging hundreds
    /// of per-worker records into the batch journal, where one durable
    /// write per record would cost O(records²) I/O.
    ///
    /// All-or-nothing: if any payload is multi-line, nothing is appended.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; `InvalidInput` for a multi-line payload.
    pub fn append_all(&mut self, payloads: &[String]) -> io::Result<()> {
        if payloads.iter().any(|p| p.contains('\n')) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal records must be single lines",
            ));
        }
        self.records.extend(payloads.iter().cloned());
        let mut text = String::new();
        for r in &self.records {
            text.push_str(&format!("{:016x} {r}\n", fnv1a(r.as_bytes())));
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            fsync_dir(dir);
        }
        Ok(())
    }

    /// Reads the checksummed records of the journal at `path` without
    /// opening it for writing — how the sharded-sweep coordinator merges
    /// the journals of workers it did not itself write. Corrupt lines are
    /// dropped exactly as in [`Journal::open`]; a missing file reads as
    /// empty (a worker that died before its first append journaled
    /// nothing, which is not an error).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn load(path: &Path) -> io::Result<Vec<String>> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(text.lines().filter_map(unframe).collect()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

/// Removes stale sharded-sweep artifacts from a journal directory:
/// per-worker journals (`*.worker-*.jsonl`), lease snapshots
/// (`*.leases.json`), serialized batches (`*.batch.json`) and orphaned
/// temp files (`*.tmp`) left behind by killed coordinators. Files whose
/// name starts with `<current_batch>.` are never touched (another process
/// of the *same* batch may be mid-crash-recovery on them), and neither is
/// anything younger than `older_than` — so a second coordinator running a
/// different batch in the same directory is safe as long as it makes
/// progress within that window. Merged batch journals (`<key>.jsonl`) are
/// deliberately kept: they are the fleet-wide resume state.
///
/// Returns how many files were removed. All I/O failures are tolerated —
/// hygiene must never kill the sweep it tidies up after.
pub fn clean_stale_artifacts(
    dir: &Path,
    current_batch: &str,
    older_than: std::time::Duration,
) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let protect = format!("{current_batch}.");
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with(&protect) {
            continue;
        }
        let is_shard_artifact = name.ends_with(".tmp")
            || name.ends_with(".leases.json")
            || name.ends_with(".batch.json")
            || (name.ends_with(".jsonl") && name.contains(".worker-"));
        if !is_shard_artifact {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= older_than);
        if old_enough && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Validates one framed line, returning the payload when the checksum
/// matches.
fn unframe(line: &str) -> Option<String> {
    let (sum, payload) = line.split_once(' ')?;
    let expected = u64::from_str_radix(sum, 16).ok()?;
    (sum.len() == 16 && fnv1a(payload.as_bytes()) == expected).then(|| payload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bl-journal-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("batch.jsonl")
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn append_then_resume_round_trips() {
        let path = tmp_path("roundtrip");
        let mut j = Journal::open(&path, false).unwrap();
        j.append(r#"{"ev":"start","i":0}"#).unwrap();
        j.append(r#"{"ev":"done","i":0}"#).unwrap();
        drop(j);
        let j = Journal::open(&path, true).unwrap();
        assert_eq!(
            j.records(),
            [r#"{"ev":"start","i":0}"#, r#"{"ev":"done","i":0}"#]
        );
    }

    #[test]
    fn fresh_open_discards_previous_batch() {
        let path = tmp_path("fresh");
        let mut j = Journal::open(&path, false).unwrap();
        j.append("old").unwrap();
        drop(j);
        let j = Journal::open(&path, false).unwrap();
        assert!(j.records().is_empty());
        assert!(!path.exists());
    }

    #[test]
    fn corrupt_lines_are_dropped_on_resume() {
        let path = tmp_path("corrupt");
        let mut j = Journal::open(&path, false).unwrap();
        j.append("good-1").unwrap();
        j.append("good-2").unwrap();
        drop(j);
        // Flip a byte in the second record's payload and append garbage —
        // simulating damaged storage and a torn tail.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("good-2", "evil-2") + "not a framed line\n0123 short";
        fs::write(&path, tampered).unwrap();
        let j = Journal::open(&path, true).unwrap();
        assert_eq!(j.records(), ["good-1"]);
    }

    #[test]
    fn resume_of_missing_journal_is_empty() {
        let path = tmp_path("missing");
        let j = Journal::open(&path, true).unwrap();
        assert!(j.records().is_empty());
    }

    #[test]
    fn multiline_payloads_are_rejected() {
        let path = tmp_path("multiline");
        let mut j = Journal::open(&path, false).unwrap();
        assert!(j.append("two\nlines").is_err());
        assert!(j
            .append_all(&["fine".to_string(), "two\nlines".to_string()])
            .is_err());
        assert!(j.records().is_empty(), "rejected batches append nothing");
    }

    #[test]
    fn append_all_is_one_durable_write_and_loads_back() {
        let path = tmp_path("bulk");
        let mut j = Journal::open(&path, false).unwrap();
        j.append("first").unwrap();
        j.append_all(&["second".to_string(), "third".to_string()])
            .unwrap();
        drop(j);
        assert_eq!(Journal::load(&path).unwrap(), ["first", "second", "third"]);
        // Read-only load of a missing journal is empty, not an error.
        assert!(Journal::load(&path.with_extension("absent"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stale_shard_artifacts_are_cleaned_but_batch_state_survives() {
        let dir = std::env::temp_dir().join(format!("bl-journal-hygiene-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let touch = |name: &str| fs::write(dir.join(name), b"x").unwrap();
        // Another (dead) batch's debris...
        touch("deadbeef.worker-123-0.jsonl");
        touch("deadbeef.leases.json");
        touch("deadbeef.batch.json");
        touch("deadbeef.jsonl.tmp");
        // ...its merged journal (fleet resume state — must survive)...
        touch("deadbeef.jsonl");
        // ...and the current batch's own in-flight artifacts.
        touch("cafe.worker-77-1.jsonl");
        touch("cafe.leases.json");

        // Young files are protected by the age threshold.
        let removed = clean_stale_artifacts(&dir, "cafe", std::time::Duration::from_secs(3600));
        assert_eq!(removed, 0);
        // With the threshold at zero the foreign debris goes away...
        let removed = clean_stale_artifacts(&dir, "cafe", std::time::Duration::ZERO);
        assert_eq!(removed, 4);
        // ...while the merged journal and the current batch's files stay.
        assert!(dir.join("deadbeef.jsonl").exists());
        assert!(dir.join("cafe.worker-77-1.jsonl").exists());
        assert!(dir.join("cafe.leases.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
