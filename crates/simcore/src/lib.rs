//! # bl-simcore
//!
//! Foundation crate for the `biglittle` asymmetric-multicore simulator:
//! simulated time, a deterministic discrete-event queue, a seedable RNG with
//! the distribution helpers the workload models need, and the statistics
//! accumulators used by the measurement layer (histograms, time-weighted
//! means, online moments, time series).
//!
//! Everything in this crate is deterministic: given the same seed and the
//! same sequence of calls, results are bit-for-bit identical across runs and
//! platforms.
//!
//! ## Example
//!
//! ```
//! use bl_simcore::time::{SimTime, SimDuration};
//! use bl_simcore::event::EventQueue;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_millis(1));
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod budget;
pub mod error;
pub mod event;
pub mod fault;
pub mod journal;
pub mod kernels;
pub mod pool;
pub mod rng;
pub mod shard;
pub mod snapstore;
pub mod stats;
pub mod time;

pub use audit::InvariantGuard;
pub use budget::{ArmedBudget, CancelToken, RunBudget};
pub use error::SimError;
pub use event::EventQueue;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use journal::Journal;
pub use rng::{derive_seed, SimRng};
pub use snapstore::{SnapEntry, SnapStore};
pub use time::{SimDuration, SimTime};
