//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! Both are newtypes over `u64` nanoseconds. Nanosecond resolution with a
//! 64-bit counter gives ~584 years of simulated time, far beyond any
//! experiment in this workspace (minutes of simulated execution).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// ```
/// use bl_simcore::time::{SimTime, SimDuration};
/// let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
/// assert_eq!(t.as_nanos(), 10_500_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```
/// use bl_simcore::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "mul_f64: negative factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!(t + d, SimTime::from_millis(14));
        assert_eq!(t - d, SimTime::from_millis(6));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(120);
        assert!((a / b - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duration_since_and_saturation() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.duration_since(a), SimDuration::from_millis(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_millis(1);
        let y = SimDuration::from_millis(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_nanos(3)); // 2.5 rounds to 3 (round-half-up)
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(15));
    }
}
