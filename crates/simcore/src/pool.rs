//! A scoped worker pool for embarrassingly-parallel simulation sweeps.
//!
//! The pool is built from `std` only (scoped threads + channels): the
//! workspace is offline/vendored, so no external executor crate is
//! available — and none is needed. Work items are pulled from a shared
//! queue by `jobs` worker threads; each item runs under
//! [`std::panic::catch_unwind`] so one panicking item surfaces as an error
//! while its siblings complete.
//!
//! Results are returned **in input order** regardless of `jobs` or of the
//! order workers happened to finish in, which is what makes parallel
//! sweeps bit-identical to serial ones: the mapping from input index to
//! output slot is fixed, and every item computes from its own inputs only.
//!
//! ```
//! use bl_simcore::pool;
//! let out = pool::scoped_map(vec![1u64, 2, 3, 4], 2, |_i, x| x * x);
//! let squares: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

use crate::budget::CancelToken;

/// The error string a cancelled (never-started) item's slot carries after
/// [`scoped_map_cancelable`] returns.
pub const CANCELLED: &str = "cancelled before start";

/// The number of worker threads to use when the caller asks for "all of
/// them" (`jobs == 0` at higher layers): the host's available parallelism,
/// or 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `jobs` scoped worker threads and
/// returns the results in input order.
///
/// `f` receives `(index, item)` so workers can label their work. A
/// panicking call is isolated: its slot carries `Err(message)` (the panic
/// payload rendered as a string) and every other item still completes.
/// `jobs` is clamped to `1..=items.len()`; `jobs <= 1` still runs items
/// through the same catch-unwind path, so serial and parallel execution
/// have identical failure semantics.
pub fn scoped_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    scoped_map_cancelable(items, jobs, &CancelToken::new(), f)
}

/// [`scoped_map`] with cooperative cancellation: once `cancel` trips, no
/// *new* item is started — in-flight items finish (or are interrupted by
/// their own budgets, if `f` polls the same token) and the skipped items'
/// slots carry `Err(`[`CANCELLED`]`)`.
///
/// This is what lets a sweep *worker process* abandon the rest of its
/// leased range the moment its coordinator dies, instead of burning
/// minutes of orphaned simulation nobody will ever merge.
pub fn scoped_map_cancelable<T, R, F>(
    items: Vec<T>,
    jobs: usize,
    cancel: &CancelToken,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // The lock is held only for the pop; `f` runs unlocked, and
                // a panic inside `f` cannot poison the queue.
                let job = queue.lock().expect("pool queue poisoned").pop_front();
                let Some((i, item)) = job else { break };
                if cancel.is_cancelled() {
                    // Deliver the slot so the collector still sees every
                    // index exactly once, then keep draining: sibling
                    // workers observe the same tripped token.
                    if tx.send((i, Err(CANCELLED.to_string()))).is_err() {
                        break;
                    }
                    continue;
                }
                // `p.as_ref()`, not `&p`: `&Box<dyn Any>` would itself
                // coerce to `&dyn Any` and hide the payload from downcasts.
                let r = catch_unwind(AssertUnwindSafe(|| f(i, item)))
                    .map_err(|p| panic_message(p.as_ref()));
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index was delivered exactly once"))
            .collect()
    })
}

/// Renders a caught panic payload as a human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_for_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 8, 64] {
            let out = scoped_map(items.clone(), jobs, |_, x| x * 3);
            let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<Result<u32, String>> = scoped_map(Vec::<u32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_item_does_not_kill_its_siblings() {
        let out = scoped_map(vec![1u32, 2, 3], 2, |_, x| {
            if x == 2 {
                panic!("boom on {x}");
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Err("boom on 2".to_string()));
        assert_eq!(out[2], Ok(30));
    }

    #[test]
    fn serial_path_catches_panics_too() {
        let out = scoped_map(vec![1u32, 2], 1, |_, x| {
            if x == 1 {
                panic!("first");
            }
            x
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(2));
    }

    #[test]
    fn index_is_passed_through() {
        let out = scoped_map(vec!["a", "b", "c"], 3, |i, s| format!("{i}:{s}"));
        let vals: Vec<String> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn a_tripped_token_skips_unstarted_items() {
        // Serial pool, token tripped by the second item: item 3 must not
        // start, and its slot must say so.
        let token = CancelToken::new();
        let out = scoped_map_cancelable(vec![1u32, 2, 3], 1, &token, |_, x| {
            if x == 2 {
                token.cancel();
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20), "in-flight items finish");
        assert_eq!(out[2], Err(CANCELLED.to_string()));
    }

    #[test]
    fn an_untripped_token_changes_nothing() {
        let token = CancelToken::new();
        let out = scoped_map_cancelable((0..9u32).collect(), 3, &token, |_, x| x + 1);
        let vals: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (1..10).collect::<Vec<_>>());
    }
}
