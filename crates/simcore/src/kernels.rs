//! Branch-free batch kernels over dense `f64` lanes.
//!
//! The simulator's hot per-tick updates — PELT geometric decay, cluster
//! power sums, thermal RC integration — all reduce to a handful of
//! element-wise recurrences over contiguous `f64` slices. This module
//! centralises those recurrences as small, chunk-friendly routines that
//! the optimiser can autovectorize: no data-dependent branches inside the
//! lane loops, explicit slice-length equality asserted up front so bounds
//! checks hoist out, and simple multiply/add bodies.
//!
//! **Bit-identity contract.** Every routine performs, per element, the
//! *exact* operation sequence of the scalar reference path it replaces
//! (same association, same order of additions, masked lanes implemented
//! as multiplications by exact `0.0`/`1.0`). Callers rely on this: the
//! repo's standing determinism invariant requires kernel-ported paths to
//! produce bit-for-bit the results of their scalar references, and the
//! side-by-side proptests in `tests/kernels.rs` enforce it. Do not
//! "simplify" an expression here without checking the reference path it
//! mirrors.

/// One-entry memo for [`f64::exp`] keyed on the argument's bit pattern.
///
/// The decay factors in the hot loops (`exp(dt · rate)`) are recomputed
/// with the *same* argument tick after tick whenever the sampling cadence
/// is periodic; a single-slot memo removes the transcendental from the
/// steady state without any table or tolerance. A miss costs one compare
/// on top of the `exp` it would have paid anyway.
#[derive(Debug, Clone, Copy)]
pub struct ExpMemo {
    key: u64,
    value: f64,
}

impl ExpMemo {
    /// An empty memo (first call always computes).
    pub fn new() -> Self {
        // NaN bits as the sentinel key: exp(NaN) = NaN, so even a lookup
        // with a NaN argument returns the right value.
        ExpMemo {
            key: f64::NAN.to_bits(),
            value: f64::NAN,
        }
    }

    /// `x.exp()`, memoised on the exact bit pattern of `x`.
    pub fn exp(&mut self, x: f64) -> f64 {
        let bits = x.to_bits();
        if bits != self.key {
            self.key = bits;
            self.value = x.exp();
        }
        self.value
    }
}

impl Default for ExpMemo {
    fn default() -> Self {
        ExpMemo::new()
    }
}

/// The precomputed per-millisecond EWMA decay rate for a half-life:
/// `-ln 2 / halflife_ms`, so that `exp(dt_ms · rate)` is the geometric
/// decay factor over `dt_ms`.
///
/// Computed once at tracker construction (the half-life never changes)
/// instead of re-deriving the logarithm on every update.
pub fn ewma_rate_per_ms(halflife_ms: f64) -> f64 {
    -core::f64::consts::LN_2 / halflife_ms
}

/// Fused EWMA decay + accumulate over parallel lanes:
/// `values[i] = values[i] · decays[i] + contributions[i] · (1 − decays[i])`.
///
/// This is the batch form of the PELT-style load update
/// `load = load·d + scale·r·(1−d)` with `contributions[i]` carrying the
/// already-scaled input `scale·r`. Lanes that must not move pass
/// `decays[i] = 1.0, contributions[i] = 0.0`: the expression then reads
/// `v·1.0 + 0.0·0.0`, which is exactly `v` for every finite non-negative
/// `v`, so masking is arithmetic, not control flow.
pub fn fused_decay_accumulate(values: &mut [f64], decays: &[f64], contributions: &[f64]) {
    assert_eq!(values.len(), decays.len(), "decay lane length mismatch");
    assert_eq!(
        values.len(),
        contributions.len(),
        "contribution lane length mismatch"
    );
    for ((v, &d), &c) in values.iter_mut().zip(decays).zip(contributions) {
        *v = *v * d + c * (1.0 - d);
    }
}

/// Exponential relaxation toward per-lane targets:
/// `values[i] = targets[i] + (values[i] − targets[i]) · decays[i]`.
///
/// The exact-solution RC step used by the thermal model: `targets` are
/// the steady-state temperatures `T∞`, `decays` the factors
/// `exp(−dt/τ)`. Association matches [`ClusterThermal::advance`]'s
/// scalar form term for term.
///
/// [`ClusterThermal::advance`]: https://docs.rs/bl-power
pub fn decay_toward(values: &mut [f64], targets: &[f64], decays: &[f64]) {
    assert_eq!(values.len(), targets.len(), "target lane length mismatch");
    assert_eq!(values.len(), decays.len(), "decay lane length mismatch");
    for ((v, &t), &d) in values.iter_mut().zip(targets).zip(decays) {
        *v = rc_step(*v, t, d);
    }
}

/// One lane of [`decay_toward`]: `target + (value − target) · decay`.
///
/// The scalar building block shared by the slice kernel and by callers
/// whose per-lane targets/decays are derived on the fly (e.g. a thermal
/// bank fusing the gather, integrate and threshold passes into one loop):
/// both spell the identical expression, so fused callers stay bit-equal
/// to the slice form.
#[inline]
pub fn rc_step(value: f64, target: f64, decay: f64) -> f64 {
    target + (value - target) * decay
}

/// The maximum of a lane, or `0.0` when it is empty — the domain
/// utilization reduction (`fold(0.0, f64::max)`) used by every governor
/// sample.
pub fn max_or_zero(values: &[f64]) -> f64 {
    values.iter().fold(0.0, |m, &v| f64::max(m, v))
}

/// Ordered sum of `weight · max(values[i], 0.0)` over a lane.
///
/// The dynamic-power inner sum of the cluster model: `weight` is the
/// hoisted `coeff · V² · f` (hoisting is exact — the scalar path
/// multiplies left-to-right, so the partial product is the same `f64`),
/// and the accumulation starts from `0.0` and adds in slice order,
/// matching `Iterator::sum` on the scalar path.
pub fn relu_weighted_sum(values: &[f64], weight: f64) -> f64 {
    let mut sum = 0.0;
    for &a in values {
        sum += weight * a.max(0.0);
    }
    sum
}

/// Idle-leak scale below which a core counts as deep-idle for cluster
/// leakage gating (mirrors the cpuidle threshold in the power model).
pub const DEEP_IDLE_SCALE: f64 = 0.2;

/// Mixed busy/idle per-core power sum over parallel activity and
/// idle-scale lanes.
///
/// Per lane, in slice order: a busy core (`act > 0.0`) contributes
/// `leak_v + dyn_vvf · max(act, 0.0)`; an idle core contributes
/// `leak_v · scale`. Returns the ordered sum plus `all_deep`: whether
/// every lane was idle with `scale <` [`DEEP_IDLE_SCALE`] (vacuously true
/// for empty lanes). The branch on activity is converted to an exact
/// arithmetic select (`mask · busy_term + (1 − mask) · idle_term`, one
/// side exactly `0.0`), so each added term is bit-equal to the scalar
/// reference's branchy contribution.
pub fn mixed_idle_power(acts: &[f64], scales: &[f64], leak_v: f64, dyn_vvf: f64) -> (f64, bool) {
    assert_eq!(acts.len(), scales.len(), "idle-scale lane length mismatch");
    let (sum, all_deep, _) = mixed_idle_power_iter(
        acts.iter().copied().zip(scales.iter().copied()),
        leak_v,
        dyn_vvf,
    );
    (sum, all_deep)
}

/// Streaming form of [`mixed_idle_power`] for lanes that arrive through a
/// gather iterator (e.g. `activity[cpu]` indexed by an online-CPU walk)
/// rather than contiguous slices: identical per-lane arithmetic select,
/// identical summation order, but one pass with no staging buffers.
/// Additionally returns the lane count so callers can detect an empty
/// (fully hotplugged-off) population without a second walk.
pub fn mixed_idle_power_iter(
    lanes: impl Iterator<Item = (f64, f64)>,
    leak_v: f64,
    dyn_vvf: f64,
) -> (f64, bool, usize) {
    let mut sum = 0.0;
    let mut shallow = 0u32; // lanes that are busy or only shallowly idle
    let mut n = 0usize;
    for (a, s) in lanes {
        let busy = (a > 0.0) as u32;
        let mask = f64::from(busy);
        sum += mask * (leak_v + dyn_vvf * a.max(0.0)) + (1.0 - mask) * (leak_v * s);
        shallow += busy | ((s >= DEEP_IDLE_SCALE) as u32);
        n += 1;
    }
    (sum, shallow == 0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_memo_matches_exp() {
        let mut memo = ExpMemo::new();
        for x in [-3.0, -0.5, 0.0, 0.25, -0.5, -0.5] {
            assert_eq!(memo.exp(x).to_bits(), x.exp().to_bits());
        }
    }

    #[test]
    fn ewma_rate_inverts_halflife() {
        let rate = ewma_rate_per_ms(32.0);
        // One half-life of decay halves the value (within float rounding).
        assert!(((32.0 * rate).exp() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fused_decay_accumulate_matches_scalar() {
        let mut v = [100.0, 512.0, 0.0, 7.25];
        let d = [0.5, 0.25, 0.9, 1.0];
        let c = [1024.0, 0.0, 300.0, 0.0];
        let mut expect = v;
        for i in 0..v.len() {
            expect[i] = expect[i] * d[i] + c[i] * (1.0 - d[i]);
        }
        fused_decay_accumulate(&mut v, &d, &c);
        for (got, want) in v.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn masked_lane_is_exact_identity() {
        let vals = [0.0, 1.0, 1023.997, 3.5e-300];
        for x in vals {
            let mut v = [x];
            fused_decay_accumulate(&mut v, &[1.0], &[0.0]);
            assert_eq!(v[0].to_bits(), x.to_bits(), "lane {x} moved");
        }
    }

    #[test]
    fn decay_toward_matches_scalar() {
        let mut v = [25.0, 80.0];
        let t = [95.0, 25.0];
        let d = [0.75, 0.5];
        let expect = [t[0] + (v[0] - t[0]) * d[0], t[1] + (v[1] - t[1]) * d[1]];
        decay_toward(&mut v, &t, &d);
        assert_eq!(v[0].to_bits(), expect[0].to_bits());
        assert_eq!(v[1].to_bits(), expect[1].to_bits());
    }

    #[test]
    fn max_or_zero_reduction() {
        assert_eq!(max_or_zero(&[]), 0.0);
        assert_eq!(max_or_zero(&[0.2, 0.9, 0.1]), 0.9);
        assert_eq!(max_or_zero(&[-1.0]), 0.0);
    }

    #[test]
    fn relu_weighted_sum_matches_iterator_sum() {
        let acts = [0.25f64, 0.0, 1.0, 1.5];
        let w = 123.456;
        let scalar: f64 = acts.iter().map(|a| w * a.max(0.0)).sum();
        assert_eq!(relu_weighted_sum(&acts, w).to_bits(), scalar.to_bits());
    }

    #[test]
    fn mixed_idle_power_matches_branchy_reference() {
        let acts = [1.0f64, 0.0, 0.35, 0.0];
        let scales = [1.0f64, 0.1, 1.0, 0.3];
        let (leak_v, dvvf) = (3.3, 250.0);
        let mut expect = 0.0;
        let mut all_deep = true;
        for (&a, &s) in acts.iter().zip(&scales) {
            if a > 0.0 {
                all_deep = false;
                expect += leak_v + dvvf * a.max(0.0);
            } else {
                if s >= DEEP_IDLE_SCALE {
                    all_deep = false;
                }
                expect += leak_v * s;
            }
        }
        let (sum, deep) = mixed_idle_power(&acts, &scales, leak_v, dvvf);
        assert_eq!(sum.to_bits(), expect.to_bits());
        assert_eq!(deep, all_deep);
    }

    #[test]
    fn mixed_idle_power_deep_when_all_lanes_deep() {
        let (sum, deep) = mixed_idle_power(&[0.0, 0.0], &[0.1, 0.19], 2.0, 100.0);
        assert!(deep);
        assert_eq!(sum.to_bits(), (2.0f64 * 0.1 + 2.0 * 0.19).to_bits());
        let (_, deep) = mixed_idle_power(&[], &[], 2.0, 100.0);
        assert!(deep, "empty lanes are vacuously deep");
    }
}
