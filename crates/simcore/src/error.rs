//! The shared simulation error type.
//!
//! Every layer of the simulator (platform, kernel, governor, driver) reports
//! failures through [`SimError`] so callers see one typed surface instead of
//! a mix of panics and ad-hoc strings. The policy split is:
//!
//! * **`SimError`** — conditions a *caller* can cause or observe: invalid
//!   configurations, invalid fault plans, hotplug requests the platform must
//!   refuse, and watchdog-detected stalls. These are returned, never panicked.
//! * **`panic!` / `assert!`** — internal invariant violations that indicate a
//!   bug in the simulator itself (e.g. an index the simulator computed being
//!   out of range). Each surviving panic site names the invariant it guards.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Typed error for everything that can go wrong constructing or running a
/// simulation.
///
/// Serializable so failed runs can be reported in the same JSON streams as
/// successful ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// A configuration was rejected before the run started (core counts,
    /// governor wiring, OPP tables, workload parameters).
    InvalidConfig {
        /// Human-readable description of the rejected setting.
        reason: String,
    },
    /// A [`FaultPlan`](crate::fault::FaultPlan) event is impossible on the
    /// configured platform.
    InvalidFaultPlan {
        /// Index of the offending event within the plan.
        index: usize,
        /// Why the event was rejected.
        reason: String,
    },
    /// A hotplug request could not be honoured (unknown CPU, or it would
    /// leave the system without the one always-online little CPU).
    Hotplug {
        /// The CPU named by the request.
        cpu: usize,
        /// Why the request was refused.
        reason: String,
    },
    /// A frequency request named a rate that is not an OPP of the cluster
    /// and could not be clamped into the valid ladder.
    InvalidFrequency {
        /// The cluster the request targeted.
        cluster: usize,
        /// The requested rate in kHz.
        freq_khz: u32,
        /// Why the request was refused.
        reason: String,
    },
    /// The watchdog detected a stalled event loop: simulated time stopped
    /// advancing while events kept firing.
    WatchdogStall {
        /// The instant at which time stopped advancing.
        at: SimTime,
        /// Number of same-time iterations observed before giving up.
        iterations: u64,
        /// Best-effort description of what was spinning.
        detail: String,
    },
    /// A task disappeared from every runqueue — the resilience layer's
    /// "never lose work" guarantee was violated. Always a bug if seen.
    TaskLost {
        /// The task's id.
        task: usize,
        /// Where the loss was detected.
        detail: String,
    },
    /// A scenario in a sweep panicked. The worker pool isolates the panic so
    /// sibling scenarios still complete; the payload is preserved here.
    ScenarioPanicked {
        /// Position of the scenario within the submitted batch.
        index: usize,
        /// The scenario's human-readable label.
        label: String,
        /// The panic payload, rendered as a string.
        detail: String,
    },
    /// The run's wall-clock budget ran out (or its cooperative cancellation
    /// token was tripped) before the simulation reached its stop condition.
    /// Budgets are supervision policy, not simulator bugs: a sweep treats
    /// this as a retryable/quarantinable failure.
    DeadlineExceeded {
        /// The configured wall-clock limit in milliseconds (`0` when the
        /// run was cancelled through the token rather than timing out).
        wall_ms: u64,
        /// Simulated time reached when the budget ran out.
        at: SimTime,
    },
    /// The run processed more simulated events than its budget allows —
    /// the deterministic cousin of [`SimError::DeadlineExceeded`], so runaway
    /// scenarios fail identically on every host.
    EventBudgetExhausted {
        /// The configured event budget.
        budget: u64,
        /// Simulated time reached when the budget ran out.
        at: SimTime,
    },
    /// The runtime invariant auditor detected a conservation-law violation
    /// (time running backwards, lost/duplicated tasks, negative energy, a
    /// frequency above the thermal cap). Always a simulator bug if seen;
    /// the auditor converts it into a typed failure at the point of
    /// corruption instead of letting garbage propagate downstream.
    InvariantViolated {
        /// Simulated time of the failed check.
        at: SimTime,
        /// Short name of the violated invariant (e.g. `time-monotone`).
        invariant: String,
        /// Structured context: observed vs expected values.
        detail: String,
    },
    /// A contiguous scenario range of a sharded sweep kept killing or
    /// stalling the worker processes it was leased to and was quarantined
    /// by the coordinator: every scenario in the range that no worker
    /// managed to publish carries this error, and the batch completes
    /// degraded instead of dying.
    ShardRangeQuarantined {
        /// First scenario index of the poisoned range.
        start: usize,
        /// One past the last scenario index of the range.
        end: usize,
        /// Lease attempts spent before the coordinator gave up.
        attempts: u32,
    },
    /// Every worker process of a sharded sweep died before the batch
    /// settled, so the remaining scenarios could not be executed at all.
    WorkerFleetLost {
        /// Fleet size at launch.
        workers: usize,
        /// What the coordinator observed (exit statuses, stalls).
        detail: String,
    },
    /// The simulation holds state that cannot be captured in a snapshot
    /// (e.g. a task driven by an opaque closure behavior). Callers fall
    /// back to a cold run; a sweep does so transparently.
    SnapshotUnsupported {
        /// What refused to be snapshotted.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::InvalidFaultPlan { index, reason } => {
                write!(f, "invalid fault plan (event #{index}): {reason}")
            }
            SimError::Hotplug { cpu, reason } => {
                write!(f, "hotplug request for cpu{cpu} refused: {reason}")
            }
            SimError::InvalidFrequency {
                cluster,
                freq_khz,
                reason,
            } => write!(
                f,
                "invalid frequency {freq_khz} kHz for cluster {cluster}: {reason}"
            ),
            SimError::WatchdogStall {
                at,
                iterations,
                detail,
            } => write!(
                f,
                "watchdog: event loop stalled at t={} ns after {iterations} \
                 same-time iterations ({detail})",
                at.as_nanos()
            ),
            SimError::TaskLost { task, detail } => {
                write!(f, "task {task} lost by the scheduler: {detail}")
            }
            SimError::ScenarioPanicked {
                index,
                label,
                detail,
            } => {
                write!(f, "scenario #{index} ({label}) panicked: {detail}")
            }
            SimError::DeadlineExceeded { wall_ms, at } => {
                if *wall_ms == 0 {
                    write!(
                        f,
                        "run cancelled at t={} ns (cooperative cancellation token)",
                        at.as_nanos()
                    )
                } else {
                    write!(
                        f,
                        "wall-clock deadline of {wall_ms} ms exceeded at t={} ns",
                        at.as_nanos()
                    )
                }
            }
            SimError::EventBudgetExhausted { budget, at } => write!(
                f,
                "event budget of {budget} events exhausted at t={} ns",
                at.as_nanos()
            ),
            SimError::InvariantViolated {
                at,
                invariant,
                detail,
            } => write!(
                f,
                "invariant {invariant:?} violated at t={} ns: {detail}",
                at.as_nanos()
            ),
            SimError::ShardRangeQuarantined {
                start,
                end,
                attempts,
            } => write!(
                f,
                "shard range [{start}, {end}) quarantined after {attempts} \
                 lease attempt(s): every worker leased it died or stalled"
            ),
            SimError::WorkerFleetLost { workers, detail } => write!(
                f,
                "all {workers} sweep worker process(es) were lost before the \
                 batch settled: {detail}"
            ),
            SimError::SnapshotUnsupported { detail } => {
                write!(f, "simulation state cannot be snapshotted: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`].
    pub fn config(reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::config("zero little cores");
        assert!(e.to_string().contains("zero little cores"));
        let w = SimError::WatchdogStall {
            at: SimTime::from_millis(3),
            iterations: 4096,
            detail: "governor sample loop".into(),
        };
        assert!(w.to_string().contains("3000000"));
        assert!(w.to_string().contains("4096"));
    }

    #[test]
    fn round_trips_through_value() {
        use serde::{Deserialize as _, Serialize as _};
        let e = SimError::Hotplug {
            cpu: 5,
            reason: "last little cpu".into(),
        };
        let v = e.ser_value();
        assert_eq!(SimError::deser_value(&v).unwrap(), e);
    }
}
