//! Fixed-bin histograms, plain and weighted.

/// A histogram over `[lo, hi)` with equally sized bins plus underflow and
/// overflow counters.
///
/// ```
/// use bl_simcore::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.9);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n_bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n_bins == 0`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(lo < hi, "Histogram: lo must be < hi");
        assert!(n_bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Approximate quantile `q` in `[0,1]` using bin midpoints; `None` if
    /// empty. Under/overflow observations are clamped to the bounds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        for i in 0..self.bins.len() {
            cum += self.bins[i];
            if cum >= target {
                let (a, b) = self.bin_bounds(i);
                return Some((a + b) / 2.0);
            }
        }
        Some(self.hi)
    }
}

/// A histogram over a fixed set of named buckets where each record carries a
/// weight (e.g. time spent at a frequency step).
///
/// ```
/// use bl_simcore::stats::WeightedHistogram;
/// let mut h = WeightedHistogram::new(3);
/// h.record(0, 2.0);
/// h.record(2, 6.0);
/// assert_eq!(h.share(2), 0.75);
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WeightedHistogram {
    weights: Vec<f64>,
}

impl WeightedHistogram {
    /// Creates a weighted histogram with `n` buckets, all zero.
    pub fn new(n: usize) -> Self {
        WeightedHistogram {
            weights: vec![0.0; n],
        }
    }

    /// Adds `weight` to bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn record(&mut self, i: usize, weight: f64) {
        self.weights[i] += weight;
    }

    /// Total weight across buckets.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weight in bucket `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Fraction of the total weight in bucket `i` (0 if the histogram is
    /// empty).
    pub fn share(&self, i: usize) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.weights[i] / t
        }
    }

    /// All bucket shares, in order.
    pub fn shares(&self) -> Vec<f64> {
        let t = self.total();
        if t <= 0.0 {
            vec![0.0; self.weights.len()]
        } else {
            self.weights.iter().map(|w| w / t).collect()
        }
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_bounds_cover_range() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_bounds(0), (2.0, 3.0));
        assert_eq!(h.bin_bounds(3), (5.0, 6.0));
    }

    #[test]
    fn quantile_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median = {med}");
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn weighted_shares_sum_to_one() {
        let mut h = WeightedHistogram::new(4);
        h.record(0, 1.0);
        h.record(1, 2.0);
        h.record(3, 1.0);
        let s: f64 = h.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(h.share(1), 0.5);
        assert_eq!(h.n_buckets(), 4);
    }

    #[test]
    fn weighted_empty_is_zero_shares() {
        let h = WeightedHistogram::new(3);
        assert_eq!(h.shares(), vec![0.0; 3]);
        assert_eq!(h.share(0), 0.0);
        assert_eq!(h.total(), 0.0);
    }

    proptest! {
        #[test]
        fn count_matches_records(xs in proptest::collection::vec(-10.0f64..20.0, 0..500)) {
            let mut h = Histogram::new(0.0, 10.0, 7);
            for x in &xs {
                h.record(*x);
            }
            prop_assert_eq!(h.count(), xs.len() as u64);
        }

        #[test]
        fn in_range_records_hit_exactly_one_bin(x in 0.0f64..10.0) {
            let mut h = Histogram::new(0.0, 10.0, 13);
            h.record(x);
            let binned: u64 = (0..h.n_bins()).map(|i| h.bin_count(i)).sum();
            prop_assert_eq!(binned, 1);
            prop_assert_eq!(h.underflow() + h.overflow(), 0);
        }
    }
}
