//! Time-weighted mean of a piecewise-constant signal.

use crate::time::SimTime;

/// Accumulates the time-weighted mean of a value that changes at discrete
/// instants (e.g. power draw, active core count).
///
/// Call [`TimeWeightedMean::update`] with the *new* value whenever the signal
/// changes; the previous value is credited for the elapsed interval.
///
/// ```
/// use bl_simcore::stats::TimeWeightedMean;
/// use bl_simcore::time::SimTime;
///
/// let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, 0.0);
/// m.update(SimTime::from_millis(10), 100.0); // 0.0 held for 10 ms
/// m.update(SimTime::from_millis(30), 0.0);   // 100.0 held for 20 ms
/// assert!((m.mean_at(SimTime::from_millis(40)) - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeWeightedMean {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64, // value * seconds
    start: SimTime,
}

impl TimeWeightedMean {
    /// Creates an accumulator whose signal holds `initial` from `start`.
    pub fn starting_at(start: SimTime, initial: f64) -> Self {
        TimeWeightedMean {
            last_time: start,
            last_value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Registers that the signal changed to `value` at `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_time,
            "TimeWeightedMean: time went backwards"
        );
        // Unchanged value: defer accumulation to the next real change so a
        // constant stretch is credited as one `value * dt` product no matter
        // how many times it was re-reported. `mean_at`/`integral_at` already
        // credit the tail from `last_time`, so observers see the same value —
        // and the single product keeps long idle gaps bit-identical whether
        // they were sampled every tick or skipped over in one jump.
        if value.to_bits() == self.last_value.to_bits() {
            return;
        }
        let dt = now.duration_since(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Time-weighted mean over `[start, now]`, crediting the current value
    /// up to `now`. Returns the current value if no time has elapsed.
    pub fn mean_at(&self, now: SimTime) -> f64 {
        let total = now.duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let tail = now.duration_since(self.last_time).as_secs_f64();
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// The integral of the signal over `[start, now]` in value·seconds
    /// (e.g. joules when the signal is watts).
    pub fn integral_at(&self, now: SimTime) -> f64 {
        let tail = now.duration_since(self.last_time).as_secs_f64();
        self.weighted_sum + self.last_value * tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signal() {
        let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, 5.0);
        m.update(SimTime::from_millis(10), 5.0);
        assert!((m.mean_at(SimTime::from_millis(20)) - 5.0).abs() < 1e-12);
        assert!((m.integral_at(SimTime::from_millis(20)) - 5.0 * 0.020).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_returns_current() {
        let m = TimeWeightedMean::starting_at(SimTime::from_millis(5), 7.0);
        assert_eq!(m.mean_at(SimTime::from_millis(5)), 7.0);
        assert_eq!(m.current(), 7.0);
    }

    #[test]
    fn step_signal() {
        let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, 2.0);
        m.update(SimTime::from_secs(1), 4.0);
        // 2.0 for 1s, then 4.0 for 3s => (2 + 12)/4 = 3.5
        assert!((m.mean_at(SimTime::from_secs(4)) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_equal_updates_match_a_single_jump_bitwise() {
        // The same constant reported every "tick" vs never re-reported must
        // produce bit-identical results: one multiply either way.
        let mut ticked = TimeWeightedMean::starting_at(SimTime::ZERO, 0.3);
        let mut jumped = TimeWeightedMean::starting_at(SimTime::ZERO, 0.3);
        for i in 1..=1000u64 {
            ticked.update(SimTime::from_millis(4 * i), 0.3);
        }
        let end = SimTime::from_secs(5);
        ticked.update(end, 1.7);
        jumped.update(end, 1.7);
        let t = SimTime::from_secs(6);
        assert_eq!(ticked.mean_at(t).to_bits(), jumped.mean_at(t).to_bits());
        assert_eq!(
            ticked.integral_at(t).to_bits(),
            jumped.integral_at(t).to_bits()
        );
    }

    proptest! {
        #[test]
        fn mean_bounded_by_extremes(values in proptest::collection::vec(0.0f64..100.0, 1..50)) {
            let mut m = TimeWeightedMean::starting_at(SimTime::ZERO, values[0]);
            let mut t = SimTime::ZERO;
            for (i, v) in values.iter().enumerate().skip(1) {
                t = SimTime::from_millis(i as u64 * 10);
                m.update(t, *v);
            }
            let end = t + crate::time::SimDuration::from_millis(10);
            let mean = m.mean_at(end);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }
}
