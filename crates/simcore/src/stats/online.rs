//! Single-pass mean/variance/min/max (Welford's algorithm).

/// Online accumulator for count, mean, variance, min and max.
///
/// ```
/// use bl_simcore::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extend_works() {
        let mut s = OnlineStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = OnlineStats::new();
        let b: OnlineStats = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 1.5);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
                                   ys in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
            let mut merged: OnlineStats = xs.iter().copied().collect();
            let right: OnlineStats = ys.iter().copied().collect();
            merged.merge(&right);

            let seq: OnlineStats = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-9);
            prop_assert!((merged.variance() - seq.variance()).abs() < 1e-7);
            prop_assert_eq!(merged.min(), seq.min());
            prop_assert_eq!(merged.max(), seq.max());
        }

        #[test]
        fn mean_within_bounds(xs in proptest::collection::vec(-50.0f64..50.0, 1..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }
    }
}
