//! Sampled time series.

use crate::time::{SimDuration, SimTime};

/// A list of `(time, value)` samples in nondecreasing time order, with
/// windowed aggregation helpers (used e.g. to compute per-second minimum FPS
/// from frame samples).
///
/// ```
/// use bl_simcore::stats::TimeSeries;
/// use bl_simcore::time::SimTime;
///
/// let mut s = TimeSeries::new();
/// s.push(SimTime::from_millis(1), 10.0);
/// s.push(SimTime::from_millis(2), 20.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.mean(), Some(15.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the last sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|last| *last <= t),
            "TimeSeries: time went backwards"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Values only.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Unweighted mean of values, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Minimum value, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().cloned().reduce(f64::min)
    }

    /// Maximum value, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().cloned().reduce(f64::max)
    }

    /// Splits the series into consecutive windows of length `window` and
    /// returns each window's aggregate computed by `f` over its values.
    /// Windows with no samples are skipped.
    pub fn window_aggregate<F>(&self, window: SimDuration, f: F) -> Vec<f64>
    where
        F: Fn(&[f64]) -> f64,
    {
        assert!(!window.is_zero(), "window_aggregate: zero window");
        if self.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut window_end = self.times[0] + window;
        for i in 0..=self.times.len() {
            let past_end = i == self.times.len() || self.times[i] >= window_end;
            if past_end {
                if i > start {
                    out.push(f(&self.values[start..i]));
                    start = i;
                }
                if i == self.times.len() {
                    break;
                }
                while self.times[i] >= window_end {
                    window_end += window;
                }
            }
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(samples: &[(u64, f64)]) -> TimeSeries {
        samples
            .iter()
            .map(|(ms, v)| (SimTime::from_millis(*ms), *v))
            .collect()
    }

    #[test]
    fn basic_aggregates() {
        let s = series(&[(0, 1.0), (1, 5.0), (2, 3.0)]);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_aggregates() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s
            .window_aggregate(SimDuration::from_millis(10), |v| v[0])
            .is_empty());
    }

    #[test]
    fn window_means() {
        // Two 10ms windows: [0,10) holds 1.0 & 3.0, [10,20) holds 5.0
        let s = series(&[(0, 1.0), (5, 3.0), (12, 5.0)]);
        let means = s.window_aggregate(SimDuration::from_millis(10), |v| {
            v.iter().sum::<f64>() / v.len() as f64
        });
        assert_eq!(means, vec![2.0, 5.0]);
    }

    #[test]
    fn window_skips_empty_windows() {
        let s = series(&[(0, 1.0), (35, 2.0)]);
        let mins = s.window_aggregate(SimDuration::from_millis(10), |v| {
            v.iter().cloned().fold(f64::INFINITY, f64::min)
        });
        // Window [0,10) -> 1.0; windows [10,20),[20,30) empty; [30,40) -> 2.0
        assert_eq!(mins, vec![1.0, 2.0]);
    }

    #[test]
    fn iter_yields_pairs() {
        let s = series(&[(1, 9.0)]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(SimTime::from_millis(1), 9.0)]);
        assert_eq!(s.values(), &[9.0]);
    }
}
