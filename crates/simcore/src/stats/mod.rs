//! Statistics accumulators used by the measurement layer.

pub mod histogram;
pub mod online;
pub mod series;
pub mod timeweighted;

pub use histogram::{Histogram, WeightedHistogram};
pub use online::OnlineStats;
pub use series::TimeSeries;
pub use timeweighted::TimeWeightedMean;
