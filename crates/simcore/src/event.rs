//! A deterministic discrete-event queue.
//!
//! Events are ordered first by time, then by insertion sequence number, so
//! simultaneous events pop in the order they were scheduled. This makes the
//! whole simulation reproducible regardless of heap-internal tie breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// ```
/// use bl_simcore::event::EventQueue;
/// use bl_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(1), 'c'); // same time: FIFO within ties
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'c')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        #[test]
        fn pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn equal_times_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_millis(7), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }
}
