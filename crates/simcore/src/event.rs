//! A deterministic discrete-event queue.
//!
//! Events are ordered first by time, then by insertion sequence number, so
//! simultaneous events pop in the order they were scheduled. This makes the
//! whole simulation reproducible regardless of queue-internal tie breaking.
//!
//! Internally the queue is a bucketed *calendar queue* (Brown, CACM 1988)
//! over an **arena**: every pending event lives in one contiguous slab of
//! slots, and each fixed-width time bucket ("day") is an intrusive singly
//! linked list threaded through that slab. Scheduling pops a slot off the
//! free list and prepends it to its day; popping unlinks it back. The
//! periodic near-horizon traffic that dominates a simulation — scheduler
//! ticks, governor samples, wake timers a few milliseconds out — lands in
//! the first day or two of the scan, making schedule/pop O(1) amortized
//! where a binary heap pays O(log n) per operation, with zero steady-state
//! allocation (the slab only grows at peak occupancy) and a clone that is a
//! handful of `memcpy`s — which is what makes simulation snapshots cheap.
//! Events more than a full calendar year ahead are found by a direct search
//! fallback, so correctness never depends on the bucket geometry.

use crate::time::SimTime;

/// Bucket width exponent: one day is `2^BUCKET_SHIFT` ns ≈ 4.2 ms, on the
/// order of the scheduler tick so consecutive ticks land in adjacent days.
const BUCKET_SHIFT: u32 = 22;

/// Starting day count; the year is `INITIAL_BUCKETS * 2^BUCKET_SHIFT` ≈
/// 270 ms wide, comfortably past every periodic event's horizon.
const INITIAL_BUCKETS: usize = 64;

/// Upper bound on the day count when growing.
const MAX_BUCKETS: usize = 1024;

/// Grow the calendar when the average day holds more than this many events.
const GROW_OCCUPANCY: usize = 4;

/// Sentinel arena index: end of a bucket list / empty free list.
const NIL: u32 = u32::MAX;

/// One pending event with its firing time and tie-breaking sequence number.
///
/// Returned by [`EventQueue::pop_entry`] so callers can stash an entry and
/// later [`EventQueue::restore`] it with its ordering intact, or
/// [`EventQueue::reschedule_entry`] it as if it had fired and been
/// re-scheduled.
#[derive(Debug, Clone)]
pub struct QueueEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> QueueEntry<E> {
    /// When the entry fires.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Insertion sequence number — the FIFO tie-breaker among equal times.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The carried event.
    pub fn event(&self) -> &E {
        &self.event
    }

    /// Consumes the entry into its firing time and event.
    pub fn into_parts(self) -> (SimTime, E) {
        (self.time, self.event)
    }
}

/// One arena slot: an event with its intrusive list link. A vacant slot
/// (`event == None`) threads its `next` through the free list instead.
#[derive(Debug, Clone)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    /// Next slot of the same day (occupied) or next free slot (vacant).
    next: u32,
    event: Option<E>,
}

/// A time-ordered queue of simulation events.
///
/// ```
/// use bl_simcore::event::EventQueue;
/// use bl_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(1), 'c'); // same time: FIFO within ties
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'c')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The arena. Occupied slots belong to exactly one day's list; vacant
    /// slots form the free list.
    slots: Vec<Slot<E>>,
    /// Head of the free list (`NIL` when the slab is fully occupied).
    free_head: u32,
    /// `bucket_heads[day % len]` heads that day's intrusive list; days from
    /// different years share a slot and are told apart by the entry's own
    /// time.
    bucket_heads: Vec<u32>,
    len: usize,
    next_seq: u64,
    /// Lower bound on every pending entry's time (the last popped time,
    /// lowered by out-of-order inserts). Scans start at its day.
    floor: SimTime,
}

/// Where `find_min` located the minimum entry: its day list and the
/// predecessor needed to unlink it in O(1).
#[derive(Clone, Copy)]
struct Loc {
    bucket: usize,
    /// Predecessor within the bucket list, `NIL` when `idx` is the head.
    prev: u32,
    idx: u32,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            bucket_heads: vec![NIL; INITIAL_BUCKETS],
            len: 0,
            next_seq: 0,
            floor: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(QueueEntry { time, seq, event });
    }

    /// Puts back an entry previously removed with [`EventQueue::pop_entry`],
    /// keeping its original time and sequence number (and therefore its
    /// place in the ordering).
    pub fn restore(&mut self, entry: QueueEntry<E>) {
        self.insert(entry);
    }

    /// Re-arms a removed entry at `time` with a *fresh* sequence number, as
    /// if it had just been scheduled — exactly what firing a periodic event
    /// and re-scheduling it would produce. The entry still has to be
    /// [`EventQueue::restore`]d to become pending again.
    pub fn reschedule_entry(&mut self, entry: &mut QueueEntry<E>, time: SimTime) {
        entry.time = time;
        entry.seq = self.next_seq;
        self.next_seq += 1;
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.find_min().map(|loc| self.slots[loc.idx as usize].time)
    }

    /// The earliest pending entry's (time, seq, event), if any.
    pub fn peek(&self) -> Option<(SimTime, u64, &E)> {
        self.find_min().map(|loc| {
            let s = &self.slots[loc.idx as usize];
            (s.time, s.seq, s.event.as_ref().expect("occupied slot"))
        })
    }

    /// Removes and returns the earliest event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(QueueEntry::into_parts)
    }

    /// Removes and returns the earliest entry whole (time, sequence number
    /// and event), for callers that may restore or reschedule it.
    pub fn pop_entry(&mut self) -> Option<QueueEntry<E>> {
        let loc = self.find_min()?;
        let entry = self.unlink(loc);
        self.floor = entry.time;
        Some(entry)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The next sequence number the queue will hand out. Part of the
    /// queue's deterministic identity: two queues with equal pending
    /// entries *and* equal sequence state behave identically forever —
    /// which is what snapshot fingerprints verify.
    pub fn seq_state(&self) -> u64 {
        self.next_seq
    }

    /// Every pending entry as `(time, seq, &event)` in firing order — the
    /// serialization view of the queue. Entries are sorted by `(time, seq)`
    /// so the on-disk representation is independent of the arena's slab
    /// layout and free-list history, which differ between a live queue and
    /// one rebuilt from parts even when their pop behavior is identical.
    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .slots
            .iter()
            .filter_map(|s| s.event.as_ref().map(|e| (s.time, s.seq, e)))
            .collect();
        out.sort_by_key(|&(t, seq, _)| (t, seq));
        out
    }

    /// Rebuilds a queue from pending entries and the sequence counter, the
    /// inverse of [`EventQueue::sorted_entries`]. The restored queue pops
    /// in the identical order and hands out the identical future sequence
    /// numbers as the queue the entries came from: ordering is carried
    /// entirely by each entry's `(time, seq)` pair, so the internal bucket
    /// geometry is free to differ.
    pub fn from_parts(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let mut q = EventQueue::new();
        q.next_seq = next_seq;
        // Start the scan floor at the earliest pending time (the tightest
        // valid lower bound); `insert` only ever lowers it further.
        q.floor = entries.iter().map(|e| e.0).min().unwrap_or(SimTime::ZERO);
        for (time, seq, event) in entries {
            q.insert(QueueEntry { time, seq, event });
        }
        q
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        for h in &mut self.bucket_heads {
            *h = NIL;
        }
        self.len = 0;
    }

    fn slot_of(&self, time: SimTime) -> usize {
        ((time.as_nanos() >> BUCKET_SHIFT) % self.bucket_heads.len() as u64) as usize
    }

    fn insert(&mut self, entry: QueueEntry<E>) {
        if self.len >= GROW_OCCUPANCY * self.bucket_heads.len()
            && self.bucket_heads.len() < MAX_BUCKETS
        {
            let new_n = (self.bucket_heads.len() * 2).min(MAX_BUCKETS);
            self.rebuild_buckets(new_n);
        }
        if entry.time < self.floor {
            self.floor = entry.time;
        }
        let bucket = self.slot_of(entry.time);
        let idx = match self.free_head {
            NIL => {
                assert!(self.slots.len() < NIL as usize, "event arena full");
                self.slots.push(Slot {
                    time: entry.time,
                    seq: entry.seq,
                    next: NIL,
                    event: Some(entry.event),
                });
                (self.slots.len() - 1) as u32
            }
            free => {
                self.free_head = self.slots[free as usize].next;
                let s = &mut self.slots[free as usize];
                s.time = entry.time;
                s.seq = entry.seq;
                s.event = Some(entry.event);
                free
            }
        };
        self.slots[idx as usize].next = self.bucket_heads[bucket];
        self.bucket_heads[bucket] = idx;
        self.len += 1;
    }

    /// Unlinks an occupied slot from its day list and returns the entry;
    /// the slot joins the free list.
    fn unlink(&mut self, loc: Loc) -> QueueEntry<E> {
        let next = self.slots[loc.idx as usize].next;
        if loc.prev == NIL {
            self.bucket_heads[loc.bucket] = next;
        } else {
            self.slots[loc.prev as usize].next = next;
        }
        let slot = &mut self.slots[loc.idx as usize];
        let event = slot.event.take().expect("unlink of vacant slot");
        let entry = QueueEntry {
            time: slot.time,
            seq: slot.seq,
            event,
        };
        slot.next = self.free_head;
        self.free_head = loc.idx;
        self.len -= 1;
        entry
    }

    /// Re-threads every occupied slot into `new_n` day lists. The free
    /// list is untouched (vacant slots are skipped).
    fn rebuild_buckets(&mut self, new_n: usize) {
        self.bucket_heads.clear();
        self.bucket_heads.resize(new_n, NIL);
        for i in 0..self.slots.len() {
            if self.slots[i].event.is_some() {
                let bucket = self.slot_of(self.slots[i].time);
                self.slots[i].next = self.bucket_heads[bucket];
                self.bucket_heads[bucket] = i as u32;
            }
        }
    }

    /// Locates the minimum (time, seq) entry.
    ///
    /// Scans day by day from the floor: within one calendar year, the first
    /// day owning any entry owns the global minimum time (days are visited
    /// in time order and a day's events all live in one list). If a full
    /// year is empty, every pending event is at least a year away and a
    /// direct search across all lists finds it. Min-selection inspects
    /// every same-day entry, so the arbitrary (prepend) order within a list
    /// never influences the result.
    fn find_min(&self) -> Option<Loc> {
        if self.len == 0 {
            return None;
        }
        let n = self.bucket_heads.len() as u64;
        let start_day = self.floor.as_nanos() >> BUCKET_SHIFT;
        for i in 0..n {
            let day = start_day + i;
            let bucket = (day % n) as usize;
            let mut cur = self.bucket_heads[bucket];
            if cur == NIL {
                continue;
            }
            let mut best: Option<(u32, u32)> = None; // (prev, idx)
            let mut prev = NIL;
            while cur != NIL {
                let s = &self.slots[cur as usize];
                if s.time.as_nanos() >> BUCKET_SHIFT == day {
                    let better = match best {
                        Some((_, b)) => {
                            let bs = &self.slots[b as usize];
                            (s.time, s.seq) < (bs.time, bs.seq)
                        }
                        None => true,
                    };
                    if better {
                        best = Some((prev, cur));
                    }
                }
                prev = cur;
                cur = s.next;
            }
            if let Some((prev, idx)) = best {
                return Some(Loc { bucket, prev, idx });
            }
        }
        // Direct-search fallback: nothing within a year of the floor.
        let mut best: Option<Loc> = None;
        for (bucket, &head) in self.bucket_heads.iter().enumerate() {
            let mut prev = NIL;
            let mut cur = head;
            while cur != NIL {
                let s = &self.slots[cur as usize];
                let better = match &best {
                    Some(loc) => {
                        let b = &self.slots[loc.idx as usize];
                        (s.time, s.seq) < (b.time, b.seq)
                    }
                    None => true,
                };
                if better {
                    best = Some(Loc {
                        bucket,
                        prev,
                        idx: cur,
                    });
                }
                prev = cur;
                cur = s.next;
            }
        }
        best
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_use_the_fallback_path() {
        let mut q = EventQueue::new();
        // Hours away: far beyond one calendar year of buckets.
        q.schedule(SimTime::from_secs(7200), 'b');
        q.schedule(SimTime::from_secs(3600), 'a');
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3600)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), 'b')));
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut q = EventQueue::new();
        let n = 4 * INITIAL_BUCKETS * GROW_OCCUPANCY; // forces several grows
        for i in 0..n {
            q.schedule(SimTime::from_nanos((i as u64 * 7919) % 1_000_000_000), i);
        }
        assert_eq!(q.len(), n);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn slots_are_reused_at_steady_state() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule(SimTime::from_millis(i), i);
        }
        let peak = q.slots.len();
        // A long schedule/pop ping-pong at constant occupancy must not
        // grow the arena: every pop frees the slot the next schedule takes.
        for i in 8..10_000 {
            q.pop().unwrap();
            q.schedule(SimTime::from_millis(i), i);
        }
        assert_eq!(q.slots.len(), peak, "arena grew at steady state");
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn clone_is_independent_and_identical() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(SimTime::from_millis(i * 3 % 17), i);
        }
        q.pop();
        let mut fork = q.clone();
        assert_eq!(fork.len(), q.len());
        assert_eq!(fork.seq_state(), q.seq_state());
        // Identical pop order...
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| fork.pop()).collect();
        assert_eq!(a, b);
        // ...and identical sequence state afterwards.
        assert_eq!(fork.seq_state(), q.seq_state());
    }

    #[test]
    fn restore_keeps_ordering_and_seq() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 'a');
        q.schedule(SimTime::from_millis(1), 'b');
        q.schedule(SimTime::from_millis(2), 'c');
        let a = q.pop_entry().unwrap();
        assert_eq!((a.time(), *a.event()), (SimTime::from_millis(1), 'a'));
        let b = q.pop_entry().unwrap();
        // Restore out of order: the original seqs still tie-break FIFO.
        q.restore(b);
        q.restore(a);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'c')));
    }

    #[test]
    fn from_parts_round_trips_pop_order_and_seq_state() {
        let mut q = EventQueue::new();
        for i in 0..60u64 {
            q.schedule(SimTime::from_nanos(i * 7919 % 50_000_000), i);
        }
        q.pop();
        q.pop();
        let entries: Vec<(SimTime, u64, u64)> = q
            .sorted_entries()
            .into_iter()
            .map(|(t, s, e)| (t, s, *e))
            .collect();
        // The view is sorted by (time, seq).
        for w in entries.windows(2) {
            assert!((w[0].0, w[0].1) <= (w[1].0, w[1].1));
        }
        let mut rebuilt = EventQueue::from_parts(entries, q.seq_state());
        assert_eq!(rebuilt.len(), q.len());
        assert_eq!(rebuilt.seq_state(), q.seq_state());
        // Identical pop order and identical future scheduling behavior.
        loop {
            let (a, b) = (q.pop_entry(), rebuilt.pop_entry());
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.time(), x.seq(), *x.event()),
                        (y.time(), y.seq(), *y.event())
                    );
                }
                _ => panic!("length mismatch"),
            }
        }
        q.schedule(SimTime::from_millis(1), 999);
        rebuilt.schedule(SimTime::from_millis(1), 999);
        assert_eq!(
            q.peek().map(|(t, s, _)| (t, s)),
            rebuilt.peek().map(|(t, s, _)| (t, s))
        );
    }

    #[test]
    fn reschedule_assigns_a_fresh_seq() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4), "tick");
        let mut tick = q.pop_entry().unwrap();
        q.reschedule_entry(&mut tick, SimTime::from_millis(8));
        // A later schedule at the same time must fire after the
        // rescheduled tick (the tick "fired and re-armed" first).
        q.restore(tick);
        q.schedule(SimTime::from_millis(8), "timer");
        assert_eq!(q.pop(), Some((SimTime::from_millis(8), "tick")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(8), "timer")));
    }

    /// Reference model: a stably sorted vector, the ordering contract in
    /// its simplest possible form.
    #[derive(Default)]
    struct Model {
        entries: Vec<(SimTime, u64, usize)>,
        next_seq: u64,
    }

    impl Model {
        fn schedule(&mut self, t: SimTime, v: usize) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push((t, seq, v));
        }
        fn pop(&mut self) -> Option<(SimTime, usize)> {
            let i = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i)?;
            let (t, _, v) = self.entries.remove(i);
            Some((t, v))
        }
    }

    proptest! {
        #[test]
        fn pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn equal_times_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_millis(7), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }

        // Interleaved schedule/pop matches the sorted-vector model exactly,
        // including FIFO tie-breaking — the BinaryHeap-replacement contract.
        #[test]
        fn matches_reference_model(
            // Some(t) = schedule at t ns, None = pop.
            ops in proptest::collection::vec(
                proptest::option::of(0u64..200_000_000u64),
                1..300,
            )
        ) {
            let mut q = EventQueue::new();
            let mut m = Model::default();
            for (i, op) in ops.into_iter().enumerate() {
                match op {
                    Some(t) => {
                        q.schedule(SimTime::from_nanos(t), i);
                        m.schedule(SimTime::from_nanos(t), i);
                    }
                    None => {
                        prop_assert_eq!(q.peek_time(), m.entries.iter().map(|e| e.0).min());
                        prop_assert_eq!(q.pop(), m.pop());
                    }
                }
                prop_assert_eq!(q.len(), m.entries.len());
            }
            while let Some(expect) = m.pop() {
                prop_assert_eq!(q.pop(), Some(expect));
            }
            prop_assert!(q.is_empty());
        }
    }
}
