//! Persistent content-addressed snapshot store.
//!
//! A warmed simulation prefix is expensive to build and cheap to describe:
//! its identity is the `SnapshotSpec` key (an FNV over the serialized
//! prefix scenario, the warm-up instant and the crate version) that the
//! sweep planner already uses to group fork candidates. This module gives
//! that key a durable home so *any* process — a later `repro` invocation,
//! a sharded worker, another host sharing the results directory — can
//! hydrate the warmed state instead of re-simulating it.
//!
//! The store is deliberately ignorant of what a snapshot *is*: it moves
//! opaque [`serde::Value`] payloads plus a little metadata. The simulation
//! layer owns serialization and, crucially, verification — after
//! hydrating, it recomputes the state fingerprint and discards the entry
//! on mismatch. Bytes from disk are never trusted to be a simulation; they
//! only get to *propose* one.
//!
//! ## On-disk format
//!
//! One file per snapshot at `<dir>/<key>.snap`, written with the same
//! durability discipline as the sweep journal: temp file, fsync, atomic
//! rename, directory fsync. The content is a single framed line
//!
//! ```text
//! <16-hex FNV-1a of payload> <payload JSON>
//! ```
//!
//! where the payload carries `{version, key, fingerprint, warm_ms, state}`.
//! A reader validates, in order: the frame checksum, the format version,
//! and that the embedded key matches the filename's key. Any failure —
//! torn write, damaged storage, stale format — deletes the file and
//! reports a miss, mirroring the result cache's self-healing behavior.
//!
//! ## Tiers
//!
//! Reads go memory-LRU → disk → miss (the caller then falls back to a cold
//! run). The in-memory tier caches *verified* parsed entries so repeated
//! hydrations within one process skip the read + checksum + parse.

use crate::journal::{fnv1a, fsync_dir};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version tag embedded in every entry; bump on any incompatible change to
/// the serialized simulation state so old stores read as misses, not as
/// garbage handed to the deserializer.
pub const SNAP_FORMAT_VERSION: u32 = 1;

/// Default number of verified entries the in-memory tier retains.
pub const DEFAULT_MEMORY_CAPACITY: usize = 16;

/// One stored snapshot: the serialized simulation state plus the metadata
/// needed to verify and account for it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapEntry {
    /// Format version; entries from other versions are treated as corrupt.
    pub version: u32,
    /// The `SnapshotSpec` key this entry was published under. Stored
    /// redundantly with the filename so a renamed/copied file cannot
    /// impersonate another prefix.
    pub key: String,
    /// The producer's state fingerprint. Hydrators recompute the
    /// fingerprint of the rebuilt simulation and discard on mismatch.
    pub fingerprint: u64,
    /// Wall-clock milliseconds the producer spent simulating up to this
    /// snapshot — what a hydrator saves by not replaying the trunk.
    pub warm_ms: f64,
    /// The serialized simulation state, opaque to the store.
    pub state: serde::Value,
}

/// Outcome counters for one store handle, reported into sweep stats.
#[derive(Debug, Default, Clone, Copy)]
pub struct SnapStoreCounters {
    /// Entries served (memory or disk tier).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub published: u64,
    /// Corrupt/stale entries deleted during lookup (self-healing).
    pub healed: u64,
}

/// A content-addressed snapshot store over one directory.
///
/// Thread-safe: sweeps hydrate and publish from pool workers concurrently.
/// Publishing the same key twice is benign — snapshots are deterministic
/// functions of their key, so the last atomic rename wins with identical
/// content.
#[derive(Debug)]
pub struct SnapStore {
    dir: PathBuf,
    capacity: usize,
    /// Most-recently-used first. Small (≤ capacity), so linear scans are
    /// cheaper than any map would be.
    lru: Mutex<Vec<SnapEntry>>,
    counters: Mutex<SnapStoreCounters>,
    /// Uniquifies temp names when several threads publish concurrently.
    tmp_seq: AtomicU64,
}

impl SnapStore {
    /// Opens (creating if needed) the store at `dir` with the default
    /// in-memory capacity. Creation failures are deferred: the store opens
    /// regardless and publishes will report the I/O error.
    pub fn open(dir: impl Into<PathBuf>) -> SnapStore {
        SnapStore::with_capacity(dir, DEFAULT_MEMORY_CAPACITY)
    }

    /// Opens the store with an explicit in-memory entry capacity
    /// (`0` disables the memory tier).
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity: usize) -> SnapStore {
        let dir = dir.into();
        let _ = fs::create_dir_all(&dir);
        SnapStore {
            dir,
            capacity,
            lru: Mutex::new(Vec::new()),
            counters: Mutex::new(SnapStoreCounters::default()),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s entry lives on disk.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.snap"))
    }

    /// Looks up `key`: memory tier first, then disk. A disk entry that
    /// fails the frame checksum, carries a foreign version, or embeds a
    /// different key is deleted (self-healing) and reads as a miss.
    pub fn load(&self, key: &str) -> Option<SnapEntry> {
        if let Some(hit) = self.lru_get(key) {
            self.counters.lock().unwrap().hits += 1;
            return Some(hit);
        }
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.counters.lock().unwrap().misses += 1;
                return None;
            }
        };
        match parse_entry(&text, key) {
            Some(entry) => {
                self.lru_put(entry.clone());
                self.counters.lock().unwrap().hits += 1;
                Some(entry)
            }
            None => {
                // Unverifiable bytes: delete so the next producer rewrites
                // a good entry instead of every reader re-failing.
                let _ = fs::remove_file(&path);
                let mut c = self.counters.lock().unwrap();
                c.healed += 1;
                c.misses += 1;
                None
            }
        }
    }

    /// Writes `entry` durably under its own key (temp file + fsync +
    /// atomic rename + directory fsync) and caches it in the memory tier.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the store stays usable (a failed publish
    /// is just a future miss).
    pub fn publish(&self, entry: &SnapEntry) -> io::Result<()> {
        let payload = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        fs::create_dir_all(&self.dir)?;
        let n = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{}.{}-{n}.tmp", entry.key, std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(line.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(&entry.key))?;
        fsync_dir(&self.dir);
        self.lru_put(entry.clone());
        self.counters.lock().unwrap().published += 1;
        Ok(())
    }

    /// Drops `key` from both tiers — what a hydrator calls when the
    /// rebuilt simulation's fingerprint does not match the entry's.
    pub fn invalidate(&self, key: &str) {
        self.lru.lock().unwrap().retain(|e| e.key != key);
        let _ = fs::remove_file(self.path_for(key));
    }

    /// Removes every snapshot (and temp debris) from the store; returns
    /// how many files were deleted.
    pub fn clear(&self) -> usize {
        self.lru.lock().unwrap().clear();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if (name.ends_with(".snap") || name.ends_with(".tmp")) && fs::remove_file(&path).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Snapshot of the handle's outcome counters.
    pub fn counters(&self) -> SnapStoreCounters {
        *self.counters.lock().unwrap()
    }

    fn lru_get(&self, key: &str) -> Option<SnapEntry> {
        if self.capacity == 0 {
            return None;
        }
        let mut lru = self.lru.lock().unwrap();
        let pos = lru.iter().position(|e| e.key == key)?;
        let entry = lru.remove(pos);
        lru.insert(0, entry.clone());
        Some(entry)
    }

    fn lru_put(&self, entry: SnapEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.lru.lock().unwrap();
        lru.retain(|e| e.key != entry.key);
        lru.insert(0, entry);
        lru.truncate(self.capacity);
    }
}

/// Validates one store file's content against the key it was looked up
/// under. Returns `None` for anything that cannot be trusted.
fn parse_entry(text: &str, key: &str) -> Option<SnapEntry> {
    let line = text.lines().next()?;
    let (sum, payload) = line.split_once(' ')?;
    let expected = u64::from_str_radix(sum, 16).ok()?;
    if sum.len() != 16 || fnv1a(payload.as_bytes()) != expected {
        return None;
    }
    let entry: SnapEntry = serde_json::from_str(payload).ok()?;
    (entry.version == SNAP_FORMAT_VERSION && entry.key == key).then_some(entry)
}

/// Removes stale temp files (`*.tmp`) and orphaned snapshot files (names
/// not of the `<16-hex-key>.snap` form) from `dir`, skipping anything
/// younger than `older_than`. Returns how many files were removed. All
/// I/O failures are tolerated — hygiene never kills the run it tidies
/// up after.
pub fn clean_stale_snapshots(dir: &Path, older_than: std::time::Duration) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let orphaned_snap = name.ends_with(".snap")
            && !name
                .strip_suffix(".snap")
                .is_some_and(|k| k.len() == 16 && k.bytes().all(|b| b.is_ascii_hexdigit()));
        if !(name.ends_with(".tmp") || orphaned_snap) {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= older_than);
        if old_enough && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_store(name: &str) -> SnapStore {
        let dir =
            std::env::temp_dir().join(format!("bl-snapstore-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapStore::open(dir)
    }

    fn entry(key: &str, fingerprint: u64) -> SnapEntry {
        SnapEntry {
            version: SNAP_FORMAT_VERSION,
            key: key.to_string(),
            fingerprint,
            warm_ms: 12.5,
            state: serde_json::to_value(vec![1u64, 2, 3]).unwrap(),
        }
    }

    #[test]
    fn publish_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let e = entry("00000000deadbeef", 42);
        store.publish(&e).unwrap();
        assert_eq!(store.load("00000000deadbeef"), Some(e.clone()));
        // And from a second handle (fresh memory tier): the disk tier serves.
        let other = SnapStore::open(store.dir());
        assert_eq!(other.load("00000000deadbeef"), Some(e));
        assert_eq!(other.counters().hits, 1);
    }

    #[test]
    fn missing_key_is_a_miss() {
        let store = temp_store("miss");
        assert_eq!(store.load("0000000000000abc"), None);
        assert_eq!(store.counters().misses, 1);
    }

    #[test]
    fn corrupt_entry_is_deleted_and_reads_as_miss() {
        let store = temp_store("corrupt");
        let e = entry("00000000cafebabe", 7);
        store.publish(&e).unwrap();
        let path = store.path_for(&e.key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("12.5", "99.9")).unwrap();
        let fresh = SnapStore::open(store.dir());
        assert_eq!(fresh.load(&e.key), None, "tampered entry must not load");
        assert!(!path.exists(), "tampered entry must be deleted");
        assert_eq!(fresh.counters().healed, 1);
    }

    #[test]
    fn truncated_entry_self_heals() {
        let store = temp_store("truncated");
        let e = entry("00000000aaaa0000", 9);
        store.publish(&e).unwrap();
        let path = store.path_for(&e.key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let fresh = SnapStore::open(store.dir());
        assert_eq!(fresh.load(&e.key), None);
        assert!(!path.exists());
    }

    #[test]
    fn version_mismatch_reads_as_miss_and_heals() {
        let store = temp_store("version");
        let mut e = entry("00000000bbbb0000", 1);
        e.version = SNAP_FORMAT_VERSION + 1;
        // Hand-frame it so the checksum is valid but the version is foreign.
        let payload = serde_json::to_string(&e).unwrap();
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        fs::write(store.path_for(&e.key), line).unwrap();
        assert_eq!(store.load(&e.key), None);
        assert!(!store.path_for(&e.key).exists());
    }

    #[test]
    fn renamed_file_cannot_impersonate_another_key() {
        let store = temp_store("impersonate");
        let e = entry("00000000cccc0000", 3);
        store.publish(&e).unwrap();
        fs::rename(store.path_for(&e.key), store.path_for("00000000dddd0000")).unwrap();
        assert_eq!(store.load("00000000dddd0000"), None);
        assert!(!store.path_for("00000000dddd0000").exists());
    }

    #[test]
    fn memory_tier_serves_after_disk_entry_vanishes() {
        let store = temp_store("memtier");
        let e = entry("00000000eeee0000", 5);
        store.publish(&e).unwrap();
        fs::remove_file(store.path_for(&e.key)).unwrap();
        // Still served from memory — publish cached it.
        assert_eq!(store.load(&e.key), Some(e.clone()));
        // invalidate drops both tiers.
        store.invalidate(&e.key);
        assert_eq!(store.load(&e.key), None);
    }

    #[test]
    fn lru_capacity_is_bounded() {
        let dir = std::env::temp_dir().join(format!("bl-snapstore-lru-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapStore::with_capacity(&dir, 2);
        for i in 0..4u64 {
            store.publish(&entry(&format!("{i:016x}"), i)).unwrap();
        }
        assert!(store.lru.lock().unwrap().len() <= 2);
        // Evicted entries still load from disk.
        assert!(store.load("0000000000000000").is_some());
    }

    #[test]
    fn clear_removes_everything() {
        let store = temp_store("clear");
        store.publish(&entry("0000000000000001", 1)).unwrap();
        store.publish(&entry("0000000000000002", 2)).unwrap();
        fs::write(store.dir().join("leftover.tmp"), b"x").unwrap();
        assert_eq!(store.clear(), 3);
        assert_eq!(store.load("0000000000000001"), None);
    }

    #[test]
    fn hygiene_removes_tmp_and_orphans_but_keeps_entries() {
        let store = temp_store("hygiene");
        store.publish(&entry("0000000000000123", 1)).unwrap();
        fs::write(store.dir().join("dead.1234-0.tmp"), b"x").unwrap();
        fs::write(store.dir().join("not-a-key.snap"), b"x").unwrap();
        assert_eq!(
            clean_stale_snapshots(store.dir(), Duration::from_secs(3600)),
            0,
            "young files are protected"
        );
        assert_eq!(clean_stale_snapshots(store.dir(), Duration::ZERO), 2);
        assert!(store.path_for("0000000000000123").exists());
    }
}
