//! Deterministic fault injection: [`FaultPlan`], a seeded, serializable
//! schedule of platform fault events.
//!
//! A plan is an ordered list of [`FaultEvent`]s. The simulation driver
//! schedules each one as an ordinary discrete event, so a run with a fault
//! plan is exactly as deterministic as a run without one: same
//! configuration + same plan + same seed → bit-identical results.
//!
//! Plans can be written by hand (builder methods), generated from a seed
//! ([`FaultPlan::random`]), or round-tripped through JSON for storage next
//! to experiment configs.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What kind of fault fires.
///
/// CPU and cluster indices are plain `usize` platform indices (CPU 0..n in
/// topology order, cluster 0 = little, 1 = big on the Exynos 5422 model);
/// this crate sits below the platform layer and cannot name its id types.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Hot-unplug a CPU: the kernel must drain and rehome its tasks.
    CpuOffline {
        /// Platform index of the CPU to take down.
        cpu: usize,
    },
    /// Bring a previously offlined CPU back.
    CpuOnline {
        /// Platform index of the CPU to bring up.
        cpu: usize,
    },
    /// Inject heat into a cluster: an instantaneous temperature step, as if
    /// from a neighbouring component (GPU, modem) or ambient change.
    ThermalSpike {
        /// Cluster to heat.
        cluster: usize,
        /// Temperature step in °C; must be finite and positive.
        delta_c: f64,
    },
    /// The cluster's governor misses its next `missed_samples` periodic
    /// samples (models an IRQ storm or a stuck kworker).
    GovernorStall {
        /// Cluster whose governor stalls.
        cluster: usize,
        /// Number of consecutive samples to drop; must be nonzero.
        missed_samples: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered, validated schedule of faults to inject into one run.
///
/// ```
/// use bl_simcore::fault::{FaultKind, FaultPlan};
/// use bl_simcore::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .with(SimTime::from_millis(100), FaultKind::CpuOffline { cpu: 7 })
///     .with(SimTime::from_millis(400), FaultKind::CpuOnline { cpu: 7 });
/// assert_eq!(plan.len(), 2);
/// assert!(plan.validate(8, 2).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Events in firing order (kept sorted by time, stable for equal times).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the common case).
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds one fault, keeping the schedule sorted by time; equal-time
    /// events keep their insertion order so plans replay deterministically.
    pub fn schedule(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// Builder-style [`schedule`](Self::schedule).
    #[must_use]
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.schedule(at, kind);
        self
    }

    /// Convenience: offline every CPU in `cpus` at `at`, bringing them back
    /// `outage` later. Models a whole-cluster outage window.
    #[must_use]
    pub fn with_outage(mut self, at: SimTime, outage: SimDuration, cpus: &[usize]) -> Self {
        for &cpu in cpus {
            self.schedule(at, FaultKind::CpuOffline { cpu });
            self.schedule(at.saturating_add(outage), FaultKind::CpuOnline { cpu });
        }
        self
    }

    /// Checks every event against a platform with `num_cpus` CPUs and
    /// `num_clusters` clusters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] naming the first bad event:
    /// out-of-range CPU/cluster, non-finite or non-positive thermal step,
    /// or a zero-length governor stall.
    pub fn validate(&self, num_cpus: usize, num_clusters: usize) -> Result<(), SimError> {
        let bad = |index: usize, reason: String| SimError::InvalidFaultPlan { index, reason };
        for (i, ev) in self.events.iter().enumerate() {
            match ev.kind {
                FaultKind::CpuOffline { cpu } | FaultKind::CpuOnline { cpu } => {
                    if cpu >= num_cpus {
                        return Err(bad(
                            i,
                            format!("cpu {cpu} out of range (platform has {num_cpus} cpus)"),
                        ));
                    }
                }
                FaultKind::ThermalSpike { cluster, delta_c } => {
                    if cluster >= num_clusters {
                        return Err(bad(i, format!("cluster {cluster} out of range")));
                    }
                    if !delta_c.is_finite() || delta_c <= 0.0 {
                        return Err(bad(
                            i,
                            format!("thermal spike of {delta_c} °C is not finite and positive"),
                        ));
                    }
                }
                FaultKind::GovernorStall {
                    cluster,
                    missed_samples,
                } => {
                    if cluster >= num_clusters {
                        return Err(bad(i, format!("cluster {cluster} out of range")));
                    }
                    if missed_samples == 0 {
                        return Err(bad(i, "governor stall of zero samples".to_string()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates a random but reproducible plan: `count` faults uniformly
    /// placed over `horizon`, drawn from all four kinds. Offline events are
    /// always paired with a later online event for the same CPU so random
    /// plans do not permanently shrink the machine.
    ///
    /// The same `(seed, count, horizon, num_cpus, num_clusters)` tuple
    /// always yields the same plan.
    pub fn random(
        seed: u64,
        count: usize,
        horizon: SimDuration,
        num_cpus: usize,
        num_clusters: usize,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xFA57_F4A7_0000_0000);
        let mut plan = FaultPlan::new();
        let horizon_ns = horizon.as_nanos().max(1);
        for _ in 0..count {
            let at = SimTime::from_nanos(rng.uniform_usize(0, horizon_ns as usize) as u64);
            match rng.uniform_usize(0, 3) {
                0 => {
                    let cpu = rng.uniform_usize(0, num_cpus);
                    // Outage lasting 1–25% of the horizon, then recovery.
                    let outage = SimDuration::from_nanos(
                        (horizon_ns as f64 * rng.uniform(0.01, 0.25)) as u64,
                    );
                    plan.schedule(at, FaultKind::CpuOffline { cpu });
                    plan.schedule(at.saturating_add(outage), FaultKind::CpuOnline { cpu });
                }
                1 => {
                    let cluster = rng.uniform_usize(0, num_clusters);
                    plan.schedule(
                        at,
                        FaultKind::ThermalSpike {
                            cluster,
                            delta_c: rng.uniform(5.0, 40.0),
                        },
                    );
                }
                _ => {
                    let cluster = rng.uniform_usize(0, num_clusters);
                    plan.schedule(
                        at,
                        FaultKind::GovernorStall {
                            cluster,
                            missed_samples: rng.uniform_usize(1, 8) as u32,
                        },
                    );
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_time_order() {
        let plan = FaultPlan::new()
            .with(SimTime::from_millis(30), FaultKind::CpuOnline { cpu: 4 })
            .with(SimTime::from_millis(10), FaultKind::CpuOffline { cpu: 4 })
            .with(
                SimTime::from_millis(20),
                FaultKind::ThermalSpike {
                    cluster: 1,
                    delta_c: 10.0,
                },
            );
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![10_000_000, 20_000_000, 30_000_000]);
    }

    #[test]
    fn equal_times_keep_insertion_order() {
        let t = SimTime::from_millis(5);
        let plan = FaultPlan::new()
            .with(t, FaultKind::CpuOffline { cpu: 1 })
            .with(t, FaultKind::CpuOffline { cpu: 2 });
        assert_eq!(plan.events()[0].kind, FaultKind::CpuOffline { cpu: 1 });
        assert_eq!(plan.events()[1].kind, FaultKind::CpuOffline { cpu: 2 });
    }

    #[test]
    fn validate_rejects_bad_events() {
        let plan = FaultPlan::new().with(SimTime::ZERO, FaultKind::CpuOffline { cpu: 9 });
        assert!(matches!(
            plan.validate(8, 2),
            Err(SimError::InvalidFaultPlan { index: 0, .. })
        ));
        let plan = FaultPlan::new().with(
            SimTime::ZERO,
            FaultKind::ThermalSpike {
                cluster: 0,
                delta_c: f64::NAN,
            },
        );
        assert!(plan.validate(8, 2).is_err());
        let plan = FaultPlan::new().with(
            SimTime::ZERO,
            FaultKind::GovernorStall {
                cluster: 1,
                missed_samples: 0,
            },
        );
        assert!(plan.validate(8, 2).is_err());
    }

    #[test]
    fn random_plans_are_reproducible_and_valid() {
        let a = FaultPlan::random(42, 10, SimDuration::from_secs(2), 8, 2);
        let b = FaultPlan::random(42, 10, SimDuration::from_secs(2), 8, 2);
        assert_eq!(a, b);
        assert!(a.validate(8, 2).is_ok());
        let c = FaultPlan::random(43, 10, SimDuration::from_secs(2), 8, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn random_offline_events_are_paired_with_online() {
        let plan = FaultPlan::random(7, 20, SimDuration::from_secs(1), 8, 2);
        let offs = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CpuOffline { .. }))
            .count();
        let ons = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CpuOnline { .. }))
            .count();
        assert_eq!(offs, ons);
    }

    #[test]
    fn outage_builder_pairs_events() {
        let plan = FaultPlan::new().with_outage(
            SimTime::from_millis(100),
            SimDuration::from_millis(50),
            &[4, 5, 6, 7],
        );
        assert_eq!(plan.len(), 8);
        assert!(plan.validate(8, 2).is_ok());
    }

    #[test]
    fn plan_round_trips_through_value() {
        use serde::{Deserialize as _, Serialize as _};
        let plan = FaultPlan::random(1, 6, SimDuration::from_secs(1), 8, 2);
        let v = plan.ser_value();
        assert_eq!(FaultPlan::deser_value(&v).unwrap(), plan);
    }
}
