//! Per-run execution budgets and cooperative cancellation.
//!
//! A [`RunBudget`] bounds how much a single simulation run may consume: a
//! **wall-clock limit** (so one pathological scenario cannot stall an
//! hours-long sweep), a **simulated-event cap** (the deterministic variant —
//! a runaway scenario fails identically on every host), and an optional
//! shared [`CancelToken`] that an external supervisor can trip.
//!
//! Enforcement is cooperative: the simulation's event loop arms the budget
//! once ([`RunBudget::arm`]) and then calls [`ArmedBudget::on_event`] for
//! every event it processes. The event cap is checked on every call; the
//! wall clock and the token are polled every
//! [`WALL_CHECK_INTERVAL`] events so the hot loop never
//! pays a syscall per event. Exhaustion surfaces as the typed
//! [`SimError::DeadlineExceeded`] / [`SimError::EventBudgetExhausted`]
//! errors a sweep supervisor can classify, retry or quarantine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::time::SimTime;

/// How many events pass between wall-clock / cancellation polls. A power of
/// two so the check compiles to a mask test.
pub const WALL_CHECK_INTERVAL: u64 = 512;

/// A shared flag that cancels a running simulation cooperatively.
///
/// Clone it, hand one copy to [`RunBudget::cancelled_by`], keep the other,
/// and call [`CancelToken::cancel`] from any thread; the run fails with
/// [`SimError::DeadlineExceeded`] (with `wall_ms = 0`) at its next poll.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-tripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token; every budget polling it fails on its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Declarative budget for one simulation run. `Default` is unlimited.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock limit, measured from [`RunBudget::arm`].
    pub wall_limit: Option<Duration>,
    /// Maximum number of simulated events the run may process.
    pub max_events: Option<u64>,
    /// Cooperative cancellation token, polled with the wall clock.
    pub token: Option<CancelToken>,
}

impl RunBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Sets the wall-clock limit.
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets the simulated-event cap.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Attaches a cancellation token.
    pub fn cancelled_by(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// True when no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.wall_limit.is_none() && self.max_events.is_none() && self.token.is_none()
    }

    /// Starts the clock: captures `Instant::now()` as the run's epoch and
    /// returns the enforcement handle the event loop drives.
    pub fn arm(&self) -> ArmedBudget {
        ArmedBudget {
            deadline: self.wall_limit.map(|l| (Instant::now() + l, l)),
            max_events: self.max_events,
            token: self.token.clone(),
            events: 0,
        }
    }
}

/// The armed, counting form of a [`RunBudget`] — owned by the simulation's
/// event loop.
#[derive(Debug)]
pub struct ArmedBudget {
    deadline: Option<(Instant, Duration)>,
    max_events: Option<u64>,
    token: Option<CancelToken>,
    events: u64,
}

impl Default for ArmedBudget {
    fn default() -> Self {
        RunBudget::default().arm()
    }
}

impl ArmedBudget {
    /// Books one processed event at simulated time `at`.
    ///
    /// # Errors
    ///
    /// [`SimError::EventBudgetExhausted`] when the event cap is crossed;
    /// [`SimError::DeadlineExceeded`] when the wall clock ran past the limit
    /// or the cancellation token was tripped (checked every
    /// [`WALL_CHECK_INTERVAL`] events).
    pub fn on_event(&mut self, at: SimTime) -> Result<(), SimError> {
        self.events += 1;
        if let Some(cap) = self.max_events {
            if self.events > cap {
                return Err(SimError::EventBudgetExhausted { budget: cap, at });
            }
        }
        if self.events & (WALL_CHECK_INTERVAL - 1) == 0 {
            self.poll_wall(at)?;
        }
        Ok(())
    }

    /// Polls the wall clock and the cancellation token immediately,
    /// regardless of the event counter — used by slow paths (e.g. the
    /// same-time watchdog loop) that want prompt cancellation.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] as for [`ArmedBudget::on_event`].
    pub fn poll_wall(&self, at: SimTime) -> Result<(), SimError> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(SimError::DeadlineExceeded { wall_ms: 0, at });
            }
        }
        if let Some((deadline, limit)) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SimError::DeadlineExceeded {
                    wall_ms: limit.as_millis() as u64,
                    at,
                });
            }
        }
        Ok(())
    }

    /// Events booked so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut armed = RunBudget::unlimited().arm();
        for _ in 0..10_000 {
            armed.on_event(SimTime::ZERO).unwrap();
        }
        assert_eq!(armed.events(), 10_000);
    }

    #[test]
    fn event_cap_is_exact_and_typed() {
        let mut armed = RunBudget::unlimited().with_max_events(100).arm();
        for _ in 0..100 {
            armed.on_event(SimTime::from_millis(1)).unwrap();
        }
        let err = armed.on_event(SimTime::from_millis(2)).unwrap_err();
        assert_eq!(
            err,
            SimError::EventBudgetExhausted {
                budget: 100,
                at: SimTime::from_millis(2)
            }
        );
    }

    #[test]
    fn zero_wall_limit_trips_at_first_poll() {
        let mut armed = RunBudget::unlimited().with_wall_limit(Duration::ZERO).arm();
        let err = (0..WALL_CHECK_INTERVAL)
            .find_map(|_| armed.on_event(SimTime::ZERO).err())
            .expect("an expired deadline must trip within one poll interval");
        assert!(matches!(err, SimError::DeadlineExceeded { wall_ms: 0, .. }));
    }

    #[test]
    fn cancellation_token_trips_cooperatively() {
        let token = CancelToken::new();
        let mut armed = RunBudget::unlimited().cancelled_by(token.clone()).arm();
        for _ in 0..WALL_CHECK_INTERVAL {
            armed.on_event(SimTime::ZERO).unwrap();
        }
        token.cancel();
        assert!(token.is_cancelled());
        let err = (0..WALL_CHECK_INTERVAL)
            .find_map(|_| armed.on_event(SimTime::ZERO).err())
            .expect("a tripped token must cancel within one poll interval");
        assert!(matches!(err, SimError::DeadlineExceeded { wall_ms: 0, .. }));
    }

    #[test]
    fn is_unlimited_reflects_configuration() {
        assert!(RunBudget::unlimited().is_unlimited());
        assert!(!RunBudget::unlimited().with_max_events(1).is_unlimited());
        assert!(!RunBudget::unlimited()
            .with_wall_limit(Duration::from_secs(1))
            .is_unlimited());
        assert!(!RunBudget::unlimited()
            .cancelled_by(CancelToken::new())
            .is_unlimited());
    }
}
