//! # bl-platform
//!
//! Hardware model of an asymmetric (big.LITTLE-style) mobile multi-core.
//!
//! This crate substitutes for the physical Exynos 5422 used in the paper
//! (Galaxy S5): it describes the two core types (out-of-order "big"
//! Cortex-A15-class and in-order "little" Cortex-A7-class), their
//! frequency/voltage operating points, the per-cluster L2 caches of
//! different sizes, and an analytic CPI-stack performance model that turns a
//! workload's architectural profile into an execution rate on a given core
//! at a given frequency.
//!
//! The performance model deliberately captures the two effects the paper
//! identifies as first-order:
//!
//! 1. the microarchitectural IPC gap between the 3-issue OoO big core and
//!    the 2-issue in-order little core, and
//! 2. the L2 capacity gap (2 MB vs 512 KB), which amplifies the big-core
//!    advantage for cache-sensitive workloads (paper §III.A: up to ~4.5×
//!    speedup at the *same* 1.3 GHz frequency).
//!
//! ## Example
//!
//! ```
//! use bl_platform::exynos::exynos5422;
//! use bl_platform::ids::CoreKind;
//!
//! let platform = exynos5422();
//! assert_eq!(platform.topology.n_cpus(), 8);
//! let big = platform.topology.cluster(bl_platform::ids::ClusterId(1));
//! assert_eq!(big.core.kind, CoreKind::Big);
//! assert_eq!(big.core.opps.max_khz(), 1_900_000);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod exynos;
pub mod ids;
pub mod opp;
pub mod perf;
pub mod state;
pub mod topology;

pub use cache::CacheModel;
pub use config::CoreConfig;
pub use ids::{ClusterId, CoreKind, CpuId};
pub use opp::{Opp, OppTable};
pub use perf::{PerfModel, Work, WorkProfile};
pub use state::PlatformState;
pub use topology::{Cluster, CoreModel, Platform, Topology};
