//! Core-enablement configurations (hotplug combinations).
//!
//! The paper's §V.C sweeps seven combinations of enabled little and big
//! cores (e.g. `L2+B1` = two little cores and one big core online) against
//! the `L4+B4` baseline. [`CoreConfig`] names such a combination and
//! validates it against the platform restriction that *at least one little
//! core must always be active* (paper §II).

use crate::ids::{CoreKind, CpuId};
use crate::topology::Topology;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A hotplug combination: how many little and big cores are online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of online little cores (must be ≥ 1 on the modeled platform).
    pub little: usize,
    /// Number of online big cores.
    pub big: usize,
}

/// Error validating a [`CoreConfig`] against a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreConfigError {
    /// The platform requires at least one little core online.
    NoLittleCore,
    /// More cores requested than the cluster has.
    TooManyCores {
        /// Which cluster kind overflowed.
        kind: CoreKind,
        /// Requested core count.
        requested: usize,
        /// Cores physically present.
        available: usize,
    },
}

impl fmt::Display for CoreConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreConfigError::NoLittleCore => {
                write!(f, "at least one little core must be online")
            }
            CoreConfigError::TooManyCores {
                kind,
                requested,
                available,
            } => write!(
                f,
                "requested {requested} {kind} cores but only {available} exist"
            ),
        }
    }
}

impl std::error::Error for CoreConfigError {}

impl CoreConfig {
    /// The full 4+4 baseline of the modeled platform.
    pub const BASELINE: CoreConfig = CoreConfig { little: 4, big: 4 };

    /// Creates a configuration; see [`CoreConfig::validate`] for the rules.
    pub const fn new(little: usize, big: usize) -> Self {
        CoreConfig { little, big }
    }

    /// The seven configurations swept in the paper's Figures 7 and 8 —
    /// "from only two little cores, to 4 little cores with two big cores".
    pub fn paper_sweep() -> Vec<CoreConfig> {
        vec![
            CoreConfig::new(2, 0),
            CoreConfig::new(4, 0),
            CoreConfig::new(2, 1),
            CoreConfig::new(4, 1),
            CoreConfig::new(2, 2),
            CoreConfig::new(4, 2),
            CoreConfig::new(3, 1),
        ]
    }

    /// Checks the configuration against a topology.
    ///
    /// # Errors
    ///
    /// Fails when no little core is online or when a cluster does not have
    /// enough physical cores.
    pub fn validate(&self, topo: &Topology) -> Result<(), CoreConfigError> {
        if self.little == 0 {
            return Err(CoreConfigError::NoLittleCore);
        }
        for (kind, requested) in [(CoreKind::Little, self.little), (CoreKind::Big, self.big)] {
            let available = topo.cpus_of_kind(kind).count();
            if requested > available {
                return Err(CoreConfigError::TooManyCores {
                    kind,
                    requested,
                    available,
                });
            }
        }
        Ok(())
    }

    /// The set of online CPUs this configuration selects: the first
    /// `little` little CPUs and the first `big` big CPUs of the topology.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreConfig::validate`] failures.
    pub fn online_cpus(&self, topo: &Topology) -> Result<Vec<CpuId>, CoreConfigError> {
        self.validate(topo)?;
        let mut cpus: Vec<CpuId> = topo
            .cpus_of_kind(CoreKind::Little)
            .take(self.little)
            .collect();
        cpus.extend(topo.cpus_of_kind(CoreKind::Big).take(self.big));
        Ok(cpus)
    }

    /// Total online cores.
    pub fn total(&self) -> usize {
        self.little + self.big
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::BASELINE
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.big == 0 {
            write!(f, "L{}", self.little)
        } else {
            write!(f, "L{}+B{}", self.little, self.big)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exynos::exynos5422;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(CoreConfig::new(2, 4).to_string(), "L2+B4");
        assert_eq!(CoreConfig::new(4, 0).to_string(), "L4");
        assert_eq!(CoreConfig::BASELINE.to_string(), "L4+B4");
    }

    #[test]
    fn sweep_has_seven_valid_configs() {
        let topo = exynos5422().topology;
        let sweep = CoreConfig::paper_sweep();
        assert_eq!(sweep.len(), 7);
        for c in &sweep {
            c.validate(&topo).unwrap();
            assert!(c.total() < CoreConfig::BASELINE.total());
        }
    }

    #[test]
    fn little_core_rule_enforced() {
        let topo = exynos5422().topology;
        assert_eq!(
            CoreConfig::new(0, 4).validate(&topo),
            Err(CoreConfigError::NoLittleCore)
        );
    }

    #[test]
    fn overflow_rejected() {
        let topo = exynos5422().topology;
        let err = CoreConfig::new(5, 0).validate(&topo).unwrap_err();
        assert!(matches!(
            err,
            CoreConfigError::TooManyCores {
                kind: CoreKind::Little,
                requested: 5,
                available: 4
            }
        ));
        assert!(err.to_string().contains("little"));
    }

    #[test]
    fn online_cpus_selection() {
        let topo = exynos5422().topology;
        let cpus = CoreConfig::new(2, 1).online_cpus(&topo).unwrap();
        assert_eq!(cpus, vec![CpuId(0), CpuId(1), CpuId(4)]);
    }
}
