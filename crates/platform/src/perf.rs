//! Analytic CPI-stack performance model.
//!
//! A task's code is characterized by a [`WorkProfile`]; the [`PerfModel`]
//! turns that profile plus a core kind, L2 cache and clock frequency into an
//! instruction throughput. The model is:
//!
//! `CPI(core, f) = cpi_core + mlp_core × mpki(L2)/1000 × t_mem × f`
//!
//! where `t_mem` is the (frequency-independent) memory latency in
//! nanoseconds, so the *cycle* cost of a miss grows linearly with frequency.
//! This yields the two behaviors the paper's Figure 2 hinges on:
//!
//! * sub-linear frequency scaling for memory-bound code, and
//! * a big-core advantage that grows with cache sensitivity because the big
//!   cluster's L2 is 4× larger (2 MB vs 512 KB).
//!
//! The `mlp` factor models memory-level parallelism: the out-of-order big
//! core overlaps a fraction of miss latency, the in-order little core
//! stalls for all of it.

use crate::cache::CacheModel;
use crate::ids::CoreKind;
use bl_simcore::time::SimDuration;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An amount of computational work, in instructions.
///
/// Fractional instructions are allowed; the scheduler drains work
/// continuously between events.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Work(f64);

impl Work {
    /// No work.
    pub const ZERO: Work = Work(0.0);

    /// Creates a quantity of work from an instruction count.
    pub fn from_instructions(n: f64) -> Self {
        debug_assert!(n >= 0.0, "Work cannot be negative");
        Work(n.max(0.0))
    }

    /// Creates work from mega-instructions.
    pub fn from_mega(n: f64) -> Self {
        Work::from_instructions(n * 1e6)
    }

    /// The work in instructions.
    pub fn instructions(self) -> f64 {
        self.0
    }

    /// True if no work remains (within float tolerance).
    pub fn is_done(self) -> bool {
        self.0 <= 1e-9
    }

    /// Subtracts up to `amount`, clamping at zero.
    pub fn saturating_sub(self, amount: Work) -> Work {
        Work((self.0 - amount.0).max(0.0))
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work(self.0 + rhs.0)
    }
}
impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        self.0 += rhs.0;
    }
}
impl Sub for Work {
    type Output = Work;
    fn sub(self, rhs: Work) -> Work {
        Work((self.0 - rhs.0).max(0.0))
    }
}
impl SubAssign for Work {
    fn sub_assign(&mut self, rhs: Work) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

/// Architectural character of a piece of code, independent of which core
/// runs it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Base (cache-hit) cycles per instruction on the little in-order core.
    pub cpi_little: f64,
    /// Base (cache-hit) cycles per instruction on the big out-of-order core.
    pub cpi_big: f64,
    /// L2 misses per kilo-instruction at the 512 KB reference capacity.
    pub mpki_ref: f64,
    /// Cache-sensitivity exponent for the power-law miss curve (0 =
    /// capacity-insensitive).
    pub cache_beta: f64,
    /// Relative switching activity while running (1.0 = typical code).
    /// ILP-rich code toggles more datapath per cycle (>1); memory-stalled
    /// code draws less (<1). Scales the dynamic power term, giving the
    /// small per-benchmark power differences of the paper's Figure 3.
    #[serde(default = "default_energy_intensity")]
    pub energy_intensity: f64,
}

fn default_energy_intensity() -> f64 {
    1.0
}

impl WorkProfile {
    /// A compute-bound profile with the default microarchitectural gap and
    /// no memory traffic — the common case for short interactive bursts.
    pub fn compute_bound() -> Self {
        WorkProfile {
            cpi_little: 1.6,
            cpi_big: 0.85,
            mpki_ref: 0.0,
            cache_beta: 0.0,
            energy_intensity: 1.0,
        }
    }

    /// Returns the profile with a different switching-activity factor.
    pub fn with_energy_intensity(mut self, k: f64) -> Self {
        debug_assert!(k > 0.0, "energy intensity must be positive");
        self.energy_intensity = k;
        self
    }

    /// Base CPI on the given core kind (no memory component).
    pub fn base_cpi(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Little => self.cpi_little,
            CoreKind::Big => self.cpi_big,
        }
    }
}

impl Default for WorkProfile {
    fn default() -> Self {
        WorkProfile::compute_bound()
    }
}

/// The platform-wide performance model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// DRAM access latency in nanoseconds (frequency independent).
    pub mem_latency_ns: f64,
    /// Fraction of miss latency exposed on the little in-order core.
    pub mlp_little: f64,
    /// Fraction of miss latency exposed on the big out-of-order core
    /// (smaller: OoO overlaps misses).
    pub mlp_big: f64,
}

impl PerfModel {
    /// Memory-level-parallelism exposure factor for a core kind.
    pub fn mlp(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Little => self.mlp_little,
            CoreKind::Big => self.mlp_big,
        }
    }

    /// Effective cycles per instruction for `profile` on a `kind` core with
    /// cache `l2` at `freq_ghz`.
    pub fn cpi(
        &self,
        profile: &WorkProfile,
        kind: CoreKind,
        l2: &CacheModel,
        freq_ghz: f64,
    ) -> f64 {
        debug_assert!(freq_ghz > 0.0, "cpi: non-positive frequency");
        let miss_cycles = self.mem_latency_ns * freq_ghz;
        profile.base_cpi(kind) + self.mlp(kind) * profile.mpki_ref_curve(l2) / 1000.0 * miss_cycles
    }

    /// Instruction throughput (instructions per second) for `profile` on a
    /// `kind` core with cache `l2` at `freq_ghz`.
    pub fn ips(
        &self,
        profile: &WorkProfile,
        kind: CoreKind,
        l2: &CacheModel,
        freq_ghz: f64,
    ) -> f64 {
        freq_ghz * 1e9 / self.cpi(profile, kind, l2, freq_ghz)
    }

    /// The work executed by running `profile` for `dur` on the given
    /// configuration — used to express demands as "time on a reference
    /// core".
    pub fn work_for(
        &self,
        profile: &WorkProfile,
        kind: CoreKind,
        l2: &CacheModel,
        freq_ghz: f64,
        dur: SimDuration,
    ) -> Work {
        Work::from_instructions(self.ips(profile, kind, l2, freq_ghz) * dur.as_secs_f64())
    }

    /// Iso-frequency speedup of big over little for `profile` given each
    /// cluster's L2.
    pub fn iso_freq_speedup(
        &self,
        profile: &WorkProfile,
        little_l2: &CacheModel,
        big_l2: &CacheModel,
        freq_ghz: f64,
    ) -> f64 {
        self.ips(profile, CoreKind::Big, big_l2, freq_ghz)
            / self.ips(profile, CoreKind::Little, little_l2, freq_ghz)
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            mem_latency_ns: 100.0,
            mlp_little: 1.0,
            mlp_big: 0.45,
        }
    }
}

impl WorkProfile {
    /// MPKI of this profile in cache `l2` via the power-law miss curve.
    pub fn mpki_ref_curve(&self, l2: &CacheModel) -> f64 {
        l2.mpki(self.mpki_ref, self.cache_beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn little_l2() -> CacheModel {
        CacheModel::new(512, 8, 64)
    }
    fn big_l2() -> CacheModel {
        CacheModel::new(2048, 16, 64)
    }

    #[test]
    fn work_arithmetic() {
        let a = Work::from_mega(2.0);
        let b = Work::from_mega(0.5);
        assert_eq!((a + b).instructions(), 2.5e6);
        assert_eq!((b - a), Work::ZERO); // clamped
        let mut c = a;
        c -= b;
        assert_eq!(c.instructions(), 1.5e6);
        assert!(Work::ZERO.is_done());
        assert!(!a.is_done());
        assert_eq!(a.saturating_sub(Work::from_mega(5.0)), Work::ZERO);
    }

    #[test]
    fn compute_bound_speedup_is_microarchitectural() {
        let m = PerfModel::default();
        let p = WorkProfile::compute_bound();
        let s = m.iso_freq_speedup(&p, &little_l2(), &big_l2(), 1.3);
        // Pure CPI ratio: 1.6 / 0.85
        assert!((s - 1.6 / 0.85).abs() < 1e-9, "speedup = {s}");
    }

    #[test]
    fn cache_sensitive_speedup_exceeds_microarchitectural() {
        let m = PerfModel::default();
        let cache_sensitive = WorkProfile {
            cpi_little: 1.8,
            cpi_big: 1.0,
            mpki_ref: 35.0,
            cache_beta: 1.0,
            energy_intensity: 1.0,
        };
        let s = m.iso_freq_speedup(&cache_sensitive, &little_l2(), &big_l2(), 1.3);
        let micro = 1.8 / 1.0;
        assert!(s > micro * 1.5, "speedup {s} should be amplified by L2 gap");
        assert!(s < 6.0, "speedup {s} should stay physical");
    }

    #[test]
    fn memory_bound_scales_sublinearly_with_frequency() {
        let m = PerfModel::default();
        let memory_bound = WorkProfile {
            cpi_little: 1.6,
            cpi_big: 0.9,
            mpki_ref: 20.0,
            cache_beta: 0.1, // streaming: capacity doesn't help
            energy_intensity: 1.0,
        };
        let ips_low = m.ips(&memory_bound, CoreKind::Big, &big_l2(), 0.8);
        let ips_high = m.ips(&memory_bound, CoreKind::Big, &big_l2(), 1.9);
        let scaling = ips_high / ips_low;
        assert!(
            scaling < 1.9 / 0.8 * 0.9,
            "freq scaling {scaling} should be sub-linear"
        );
        assert!(scaling > 1.0);
    }

    #[test]
    fn work_for_round_trips_duration() {
        let m = PerfModel::default();
        let p = WorkProfile::compute_bound();
        let w = m.work_for(
            &p,
            CoreKind::Little,
            &little_l2(),
            1.3,
            SimDuration::from_millis(10),
        );
        let rate = m.ips(&p, CoreKind::Little, &little_l2(), 1.3);
        let t = w.instructions() / rate;
        assert!((t - 0.010).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn ips_positive_and_monotone_in_freq(
            cpi_l in 1.0f64..3.0, cpi_b in 0.5f64..1.5,
            mpki in 0.0f64..40.0, beta in 0.0f64..1.5,
            f1 in 0.5f64..2.0, f2 in 0.5f64..2.0)
        {
            let m = PerfModel::default();
            let p = WorkProfile {
                cpi_little: cpi_l,
                cpi_big: cpi_b,
                mpki_ref: mpki,
                cache_beta: beta,
                energy_intensity: 1.0,
            };
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            for kind in CoreKind::ALL {
                let l2 = if kind.is_big() { big_l2() } else { little_l2() };
                let a = m.ips(&p, kind, &l2, lo);
                let b = m.ips(&p, kind, &l2, hi);
                prop_assert!(a > 0.0);
                prop_assert!(b >= a - 1e-6, "ips must not decrease with frequency");
            }
        }

        #[test]
        fn big_always_at_least_as_fast_iso_freq(
            mpki in 0.0f64..40.0, beta in 0.0f64..1.5, f in 0.8f64..1.3)
        {
            // With the default model (big base CPI < little base CPI, bigger L2,
            // more MLP) the big core wins at iso-frequency — the paper observes
            // exactly this for all SPEC applications on this platform.
            let m = PerfModel::default();
            let p = WorkProfile {
                cpi_little: 1.6,
                cpi_big: 0.85,
                mpki_ref: mpki,
                cache_beta: beta,
                energy_intensity: 1.0,
            };
            let s = m.iso_freq_speedup(&p, &little_l2(), &big_l2(), f);
            prop_assert!(s >= 1.0);
        }
    }
}
