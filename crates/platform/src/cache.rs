//! L2 cache model with a power-law miss-rate curve.
//!
//! The target platform gives the big cluster a 2 MB L2 but the little
//! cluster only 512 KB. The paper (§II, §III.A) stresses that this capacity
//! gap *enlarges* the big-core advantage for cache-sensitive applications
//! beyond what microarchitecture alone would give. We model the miss-rate
//! curve as a power law in cache capacity — the standard analytic form for
//! stack-distance-driven miss curves:
//!
//! `mpki(size) = mpki_ref × (ref_size / size)^beta`
//!
//! where `beta` is the workload's cache sensitivity (0 = insensitive) and
//! the reference size is 512 KB (the little cluster's L2).

use serde::{Deserialize, Serialize};

/// Reference cache size for workload MPKI parameters (the little cluster's
/// L2 on the modeled platform).
pub const REFERENCE_L2_KB: u32 = 512;

/// A physically described L2 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheModel {
    /// Capacity in KiB.
    pub size_kb: u32,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheModel {
    /// Creates a cache model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(size_kb: u32, assoc: u32, line_bytes: u32) -> Self {
        assert!(
            size_kb > 0 && assoc > 0 && line_bytes > 0,
            "cache dims must be nonzero"
        );
        CacheModel {
            size_kb,
            assoc,
            line_bytes,
        }
    }

    /// Misses per kilo-instruction for a workload with miss rate
    /// `mpki_at_ref` at the reference 512 KB capacity and cache-sensitivity
    /// exponent `beta`.
    ///
    /// A `beta` of 0 means the workload's working set either fits everywhere
    /// or fits nowhere — capacity does not matter. Typical cache-sensitive
    /// SPEC workloads have `beta` around 0.5–1.2.
    pub fn mpki(&self, mpki_at_ref: f64, beta: f64) -> f64 {
        debug_assert!(mpki_at_ref >= 0.0 && beta >= 0.0);
        mpki_at_ref * (REFERENCE_L2_KB as f64 / self.size_kb as f64).powf(beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_size_is_identity() {
        let c = CacheModel::new(512, 8, 64);
        assert!((c.mpki(10.0, 0.9) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn larger_cache_reduces_misses() {
        let small = CacheModel::new(512, 8, 64);
        let big = CacheModel::new(2048, 16, 64);
        assert!(big.mpki(10.0, 0.9) < small.mpki(10.0, 0.9));
        // 4x capacity at beta=1 quarters the MPKI.
        assert!((big.mpki(10.0, 1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn beta_zero_is_insensitive() {
        let big = CacheModel::new(2048, 16, 64);
        assert_eq!(big.mpki(7.0, 0.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        CacheModel::new(0, 8, 64);
    }

    proptest! {
        #[test]
        fn mpki_monotone_in_capacity(mpki in 0.0f64..50.0, beta in 0.0f64..2.0,
                                     s1 in 64u32..4096, s2 in 64u32..4096) {
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            let small = CacheModel::new(lo, 8, 64);
            let large = CacheModel::new(hi, 8, 64);
            prop_assert!(large.mpki(mpki, beta) <= small.mpki(mpki, beta) + 1e-9);
            prop_assert!(small.mpki(mpki, beta) >= 0.0);
        }
    }
}
