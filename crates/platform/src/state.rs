//! Mutable platform state: which CPUs are online, each cluster's current
//! frequency, and any thermal frequency ceilings in force.

use crate::config::{CoreConfig, CoreConfigError};
use crate::ids::{ClusterId, CoreKind, CpuId};
use crate::topology::Topology;
use bl_simcore::error::SimError;

/// Runtime state of the platform hardware knobs.
///
/// Frequencies are per-cluster ("each core type must have the same frequency
/// setting", paper §II). Constructed at the minimum OPP of each cluster,
/// mirroring a freshly booted governor.
///
/// A per-cluster *frequency cap* models thermal throttling: every frequency
/// request — from governors or fixed-frequency experiments alike — is
/// clamped to the highest OPP at or below the cap, exactly as the Linux
/// thermal framework constrains cpufreq policies.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlatformState {
    online: Vec<bool>,
    cluster_freq_khz: Vec<u32>,
    /// Per-cluster ceiling in kHz; `u32::MAX` means uncapped.
    freq_cap_khz: Vec<u32>,
}

impl PlatformState {
    /// Creates state with all CPUs online and every cluster at its minimum
    /// frequency, uncapped.
    pub fn new(topo: &Topology) -> Self {
        PlatformState {
            online: vec![true; topo.n_cpus()],
            cluster_freq_khz: topo
                .clusters()
                .iter()
                .map(|c| c.core.opps.min_khz())
                .collect(),
            freq_cap_khz: vec![u32::MAX; topo.n_clusters()],
        }
    }

    /// Applies a hotplug configuration: the selected CPUs go online, all
    /// others offline.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn apply_core_config(
        &mut self,
        topo: &Topology,
        config: CoreConfig,
    ) -> Result<(), CoreConfigError> {
        let cpus = config.online_cpus(topo)?;
        self.online.iter_mut().for_each(|o| *o = false);
        for c in cpus {
            self.online[c.0] = true;
        }
        Ok(())
    }

    /// Whether `cpu` is online.
    pub fn is_online(&self, cpu: CpuId) -> bool {
        self.online[cpu.0]
    }

    /// Hotplugs one CPU on or off, enforcing the platform's survival rule:
    /// at least one little CPU stays online at all times (the Exynos boot
    /// CPU cannot be unplugged, and an empty machine can run nothing).
    ///
    /// Returns `Ok(true)` when the bit changed, `Ok(false)` when the CPU was
    /// already in the requested state.
    ///
    /// # Errors
    ///
    /// [`SimError::Hotplug`] when `cpu` does not exist or offlining it would
    /// leave no online little CPU.
    pub fn set_online(
        &mut self,
        topo: &Topology,
        cpu: CpuId,
        online: bool,
    ) -> Result<bool, SimError> {
        if cpu.0 >= topo.n_cpus() {
            return Err(SimError::Hotplug {
                cpu: cpu.0,
                reason: format!("no such cpu (platform has {})", topo.n_cpus()),
            });
        }
        if self.online[cpu.0] == online {
            return Ok(false);
        }
        if !online && topo.kind_of(cpu) == CoreKind::Little {
            let remaining = topo
                .cpus_of_kind(CoreKind::Little)
                .filter(|c| *c != cpu && self.is_online(*c))
                .count();
            if remaining == 0 {
                return Err(SimError::Hotplug {
                    cpu: cpu.0,
                    reason: "would leave no online little cpu (boot cpu must stay up)".into(),
                });
            }
        }
        self.online[cpu.0] = online;
        Ok(true)
    }

    /// Online CPUs, ascending.
    pub fn online_cpus<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = CpuId> + 'a {
        topo.cpus().filter(move |c| self.is_online(*c))
    }

    /// Online CPUs within a cluster.
    pub fn online_in<'a>(
        &'a self,
        topo: &'a Topology,
        cluster: ClusterId,
    ) -> impl Iterator<Item = CpuId> + 'a {
        topo.cpus_in(cluster).filter(move |c| self.is_online(*c))
    }

    /// Current frequency of `cluster` in kHz.
    pub fn cluster_freq_khz(&self, cluster: ClusterId) -> u32 {
        self.cluster_freq_khz[cluster.0]
    }

    /// Current frequency of the cluster serving `cpu`, in kHz.
    pub fn freq_of(&self, topo: &Topology, cpu: CpuId) -> u32 {
        self.cluster_freq_khz(topo.cluster_of(cpu))
    }

    /// The thermal frequency ceiling on `cluster`, if one is in force.
    pub fn freq_cap(&self, cluster: ClusterId) -> Option<u32> {
        let cap = self.freq_cap_khz[cluster.0];
        (cap != u32::MAX).then_some(cap)
    }

    /// The highest frequency currently reachable on `cluster`: the top of
    /// the OPP ladder, lowered to the cap while throttled (never below the
    /// ladder minimum — hardware cannot run slower than its slowest OPP).
    pub fn effective_max_khz(&self, topo: &Topology, cluster: ClusterId) -> u32 {
        let opps = &topo.cluster(cluster).core.opps;
        opps.round_down(self.freq_cap_khz[cluster.0]).freq_khz
    }

    /// Installs or removes a thermal ceiling. If the cluster currently runs
    /// above the new ceiling its frequency is immediately clamped down, as
    /// the thermal driver does to a running cpufreq policy.
    pub fn set_freq_cap(&mut self, topo: &Topology, cluster: ClusterId, cap_khz: Option<u32>) {
        self.freq_cap_khz[cluster.0] = cap_khz.unwrap_or(u32::MAX);
        let ceiling = self.effective_max_khz(topo, cluster);
        if self.cluster_freq_khz[cluster.0] > ceiling {
            self.cluster_freq_khz[cluster.0] = ceiling;
        }
    }

    /// Sets a cluster frequency, clamped to any thermal ceiling in force.
    /// Returns the frequency actually programmed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFrequency`] if `freq_khz` is not an OPP of the
    /// cluster — governors must round to table entries first.
    pub fn try_set_cluster_freq(
        &mut self,
        topo: &Topology,
        cluster: ClusterId,
        freq_khz: u32,
    ) -> Result<u32, SimError> {
        let opps = &topo.cluster(cluster).core.opps;
        if opps.index_of(freq_khz).is_none() {
            return Err(SimError::InvalidFrequency {
                cluster: cluster.0,
                freq_khz,
                reason: format!(
                    "not an OPP (ladder spans {}..={} kHz)",
                    opps.min_khz(),
                    opps.max_khz()
                ),
            });
        }
        let effective = freq_khz.min(self.effective_max_khz(topo, cluster));
        self.cluster_freq_khz[cluster.0] = effective;
        Ok(effective)
    }

    /// Sets a cluster frequency, clamped to any thermal ceiling in force.
    ///
    /// # Panics
    ///
    /// Panics if `freq_khz` is not an OPP of that cluster — governors must
    /// round to table entries first. Fallible callers use
    /// [`try_set_cluster_freq`](Self::try_set_cluster_freq).
    pub fn set_cluster_freq(&mut self, topo: &Topology, cluster: ClusterId, freq_khz: u32) {
        self.try_set_cluster_freq(topo, cluster, freq_khz)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sets every cluster to its maximum *reachable* OPP (the "performance"
    /// governor setting used by fixed-frequency experiments) — throttled
    /// clusters land on their ceiling instead.
    pub fn set_all_max(&mut self, topo: &Topology) {
        for c in topo.clusters() {
            self.cluster_freq_khz[c.id.0] = c
                .core
                .opps
                .max_khz()
                .min(self.effective_max_khz(topo, c.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exynos::exynos5422;

    #[test]
    fn starts_at_min_freq_all_online() {
        let p = exynos5422();
        let s = PlatformState::new(&p.topology);
        assert!(p.topology.cpus().all(|c| s.is_online(c)));
        assert_eq!(s.cluster_freq_khz(ClusterId(0)), 500_000);
        assert_eq!(s.cluster_freq_khz(ClusterId(1)), 800_000);
    }

    #[test]
    fn apply_core_config_toggles_online() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.apply_core_config(&p.topology, CoreConfig::new(2, 1))
            .unwrap();
        let online: Vec<usize> = s.online_cpus(&p.topology).map(|c| c.0).collect();
        assert_eq!(online, vec![0, 1, 4]);
        assert_eq!(s.online_in(&p.topology, ClusterId(1)).count(), 1);
    }

    #[test]
    fn invalid_config_leaves_state_errored() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        assert!(s
            .apply_core_config(&p.topology, CoreConfig::new(0, 1))
            .is_err());
    }

    #[test]
    fn freq_set_and_lookup() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.set_cluster_freq(&p.topology, ClusterId(1), 1_900_000);
        assert_eq!(s.freq_of(&p.topology, CpuId(4)), 1_900_000);
        assert_eq!(s.freq_of(&p.topology, CpuId(0)), 500_000);
        s.set_all_max(&p.topology);
        assert_eq!(s.freq_of(&p.topology, CpuId(0)), 1_300_000);
    }

    #[test]
    #[should_panic(expected = "not an OPP")]
    fn off_table_freq_panics() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.set_cluster_freq(&p.topology, ClusterId(0), 123_456);
    }

    #[test]
    fn try_set_rejects_off_table_freq() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        let err = s
            .try_set_cluster_freq(&p.topology, ClusterId(0), 123_456)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFrequency { cluster: 0, .. }));
    }

    #[test]
    fn freq_cap_clamps_requests_and_current_freq() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        let big = ClusterId(1);
        s.set_cluster_freq(&p.topology, big, 1_900_000);
        // Installing a cap clamps the running frequency immediately...
        s.set_freq_cap(&p.topology, big, Some(1_200_000));
        assert_eq!(s.cluster_freq_khz(big), 1_200_000);
        assert_eq!(s.freq_cap(big), Some(1_200_000));
        assert_eq!(s.effective_max_khz(&p.topology, big), 1_200_000);
        // ...and later requests above it land on the ceiling.
        let got = s.try_set_cluster_freq(&p.topology, big, 1_900_000).unwrap();
        assert_eq!(got, 1_200_000);
        // Requests below the cap pass through unchanged.
        let got = s.try_set_cluster_freq(&p.topology, big, 800_000).unwrap();
        assert_eq!(got, 800_000);
        // Removing the cap restores the full ladder.
        s.set_freq_cap(&p.topology, big, None);
        assert_eq!(s.freq_cap(big), None);
        assert_eq!(
            s.try_set_cluster_freq(&p.topology, big, 1_900_000).unwrap(),
            1_900_000
        );
    }

    #[test]
    fn cap_between_opps_rounds_down_and_never_below_min() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        let big = ClusterId(1);
        // A cap between ladder steps resolves to the next OPP below it.
        s.set_freq_cap(&p.topology, big, Some(1_250_000));
        assert_eq!(s.effective_max_khz(&p.topology, big), 1_200_000);
        // A cap below the ladder floors at the minimum OPP.
        s.set_freq_cap(&p.topology, big, Some(100_000));
        assert_eq!(s.effective_max_khz(&p.topology, big), 800_000);
    }

    #[test]
    fn set_all_max_respects_cap() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.set_freq_cap(&p.topology, ClusterId(1), Some(1_000_000));
        s.set_all_max(&p.topology);
        assert_eq!(s.cluster_freq_khz(ClusterId(0)), 1_300_000);
        assert_eq!(s.cluster_freq_khz(ClusterId(1)), 1_000_000);
    }

    #[test]
    fn set_online_toggles_and_reports_change() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        assert!(s.set_online(&p.topology, CpuId(5), false).unwrap());
        assert!(!s.is_online(CpuId(5)));
        // Idempotent: no change reported.
        assert!(!s.set_online(&p.topology, CpuId(5), false).unwrap());
        assert!(s.set_online(&p.topology, CpuId(5), true).unwrap());
    }

    #[test]
    fn last_little_cpu_cannot_go_offline() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        for cpu in 1..4 {
            s.set_online(&p.topology, CpuId(cpu), false).unwrap();
        }
        let err = s.set_online(&p.topology, CpuId(0), false).unwrap_err();
        assert!(matches!(err, SimError::Hotplug { cpu: 0, .. }));
        assert!(s.is_online(CpuId(0)));
        // The whole big cluster may still go down.
        for cpu in 4..8 {
            s.set_online(&p.topology, CpuId(cpu), false).unwrap();
        }
        assert_eq!(s.online_cpus(&p.topology).count(), 1);
    }

    #[test]
    fn unknown_cpu_is_a_hotplug_error() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        assert!(matches!(
            s.set_online(&p.topology, CpuId(99), false),
            Err(SimError::Hotplug { cpu: 99, .. })
        ));
    }
}
