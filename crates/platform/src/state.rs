//! Mutable platform state: which CPUs are online and each cluster's current
//! frequency.

use crate::config::{CoreConfig, CoreConfigError};
use crate::ids::{ClusterId, CpuId};
use crate::topology::Topology;

/// Runtime state of the platform hardware knobs.
///
/// Frequencies are per-cluster ("each core type must have the same frequency
/// setting", paper §II). Constructed at the minimum OPP of each cluster,
/// mirroring a freshly booted governor.
#[derive(Debug, Clone)]
pub struct PlatformState {
    online: Vec<bool>,
    cluster_freq_khz: Vec<u32>,
}

impl PlatformState {
    /// Creates state with all CPUs online and every cluster at its minimum
    /// frequency.
    pub fn new(topo: &Topology) -> Self {
        PlatformState {
            online: vec![true; topo.n_cpus()],
            cluster_freq_khz: topo
                .clusters()
                .iter()
                .map(|c| c.core.opps.min_khz())
                .collect(),
        }
    }

    /// Applies a hotplug configuration: the selected CPUs go online, all
    /// others offline.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn apply_core_config(
        &mut self,
        topo: &Topology,
        config: CoreConfig,
    ) -> Result<(), CoreConfigError> {
        let cpus = config.online_cpus(topo)?;
        self.online.iter_mut().for_each(|o| *o = false);
        for c in cpus {
            self.online[c.0] = true;
        }
        Ok(())
    }

    /// Whether `cpu` is online.
    pub fn is_online(&self, cpu: CpuId) -> bool {
        self.online[cpu.0]
    }

    /// Online CPUs, ascending.
    pub fn online_cpus<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = CpuId> + 'a {
        topo.cpus().filter(move |c| self.is_online(*c))
    }

    /// Online CPUs within a cluster.
    pub fn online_in<'a>(
        &'a self,
        topo: &'a Topology,
        cluster: ClusterId,
    ) -> impl Iterator<Item = CpuId> + 'a {
        topo.cpus_in(cluster).filter(move |c| self.is_online(*c))
    }

    /// Current frequency of `cluster` in kHz.
    pub fn cluster_freq_khz(&self, cluster: ClusterId) -> u32 {
        self.cluster_freq_khz[cluster.0]
    }

    /// Current frequency of the cluster serving `cpu`, in kHz.
    pub fn freq_of(&self, topo: &Topology, cpu: CpuId) -> u32 {
        self.cluster_freq_khz(topo.cluster_of(cpu))
    }

    /// Sets a cluster frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq_khz` is not an OPP of that cluster — governors must
    /// round to table entries first.
    pub fn set_cluster_freq(&mut self, topo: &Topology, cluster: ClusterId, freq_khz: u32) {
        let opps = &topo.cluster(cluster).core.opps;
        assert!(
            opps.index_of(freq_khz).is_some(),
            "{freq_khz} kHz is not an OPP of {cluster}"
        );
        self.cluster_freq_khz[cluster.0] = freq_khz;
    }

    /// Sets every cluster to its maximum OPP (the "performance" governor
    /// setting used by fixed-frequency experiments).
    pub fn set_all_max(&mut self, topo: &Topology) {
        for c in topo.clusters() {
            self.cluster_freq_khz[c.id.0] = c.core.opps.max_khz();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exynos::exynos5422;

    #[test]
    fn starts_at_min_freq_all_online() {
        let p = exynos5422();
        let s = PlatformState::new(&p.topology);
        assert!(p.topology.cpus().all(|c| s.is_online(c)));
        assert_eq!(s.cluster_freq_khz(ClusterId(0)), 500_000);
        assert_eq!(s.cluster_freq_khz(ClusterId(1)), 800_000);
    }

    #[test]
    fn apply_core_config_toggles_online() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.apply_core_config(&p.topology, CoreConfig::new(2, 1)).unwrap();
        let online: Vec<usize> = s.online_cpus(&p.topology).map(|c| c.0).collect();
        assert_eq!(online, vec![0, 1, 4]);
        assert_eq!(s.online_in(&p.topology, ClusterId(1)).count(), 1);
    }

    #[test]
    fn invalid_config_leaves_state_errored() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        assert!(s.apply_core_config(&p.topology, CoreConfig::new(0, 1)).is_err());
    }

    #[test]
    fn freq_set_and_lookup() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.set_cluster_freq(&p.topology, ClusterId(1), 1_900_000);
        assert_eq!(s.freq_of(&p.topology, CpuId(4)), 1_900_000);
        assert_eq!(s.freq_of(&p.topology, CpuId(0)), 500_000);
        s.set_all_max(&p.topology);
        assert_eq!(s.freq_of(&p.topology, CpuId(0)), 1_300_000);
    }

    #[test]
    #[should_panic(expected = "not an OPP")]
    fn off_table_freq_panics() {
        let p = exynos5422();
        let mut s = PlatformState::new(&p.topology);
        s.set_cluster_freq(&p.topology, ClusterId(0), 123_456);
    }
}
