//! Operating performance points (frequency/voltage pairs) and OPP tables.

use serde::{Deserialize, Serialize};

/// One DVFS operating point: a frequency in kHz with its supply voltage in
/// millivolts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Opp {
    /// Core clock frequency in kHz.
    pub freq_khz: u32,
    /// Supply voltage in mV at this frequency.
    pub voltage_mv: u32,
}

impl Opp {
    /// Frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_khz as f64 / 1e6
    }

    /// Voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_mv as f64 / 1e3
    }
}

/// An ordered table of operating points for one frequency domain (cluster).
///
/// Invariant: at least one OPP, strictly ascending in frequency.
///
/// ```
/// use bl_platform::opp::{Opp, OppTable};
/// let t = OppTable::new(vec![
///     Opp { freq_khz: 500_000, voltage_mv: 900 },
///     Opp { freq_khz: 1_000_000, voltage_mv: 1_050 },
/// ]).unwrap();
/// assert_eq!(t.min_khz(), 500_000);
/// assert_eq!(t.round_up(600_000).freq_khz, 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OppTable {
    opps: Vec<Opp>,
}

/// Error constructing an [`OppTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OppTableError {
    /// The table had no entries.
    Empty,
    /// Frequencies were not strictly ascending.
    NotAscending,
}

impl std::fmt::Display for OppTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OppTableError::Empty => write!(f, "opp table has no entries"),
            OppTableError::NotAscending => {
                write!(f, "opp frequencies must be strictly ascending")
            }
        }
    }
}

impl std::error::Error for OppTableError {}

impl OppTable {
    /// Creates a table from ascending operating points.
    ///
    /// # Errors
    ///
    /// Returns an error if `opps` is empty or not strictly ascending in
    /// frequency.
    pub fn new(opps: Vec<Opp>) -> Result<Self, OppTableError> {
        if opps.is_empty() {
            return Err(OppTableError::Empty);
        }
        if opps.windows(2).any(|w| w[0].freq_khz >= w[1].freq_khz) {
            return Err(OppTableError::NotAscending);
        }
        Ok(OppTable { opps })
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Always false by construction, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// Iterates operating points, ascending in frequency.
    pub fn iter(&self) -> impl Iterator<Item = &Opp> {
        self.opps.iter()
    }

    /// The lowest frequency in kHz.
    pub fn min_khz(&self) -> u32 {
        self.opps[0].freq_khz
    }

    /// The highest frequency in kHz.
    pub fn max_khz(&self) -> u32 {
        self.opps[self.opps.len() - 1].freq_khz
    }

    /// The operating point at index `i` (ascending).
    pub fn get(&self, i: usize) -> &Opp {
        &self.opps[i]
    }

    /// Index of the operating point with exactly `freq_khz`, if present.
    pub fn index_of(&self, freq_khz: u32) -> Option<usize> {
        self.opps.iter().position(|o| o.freq_khz == freq_khz)
    }

    /// The lowest OPP whose frequency is `>= target_khz`, or the maximum OPP
    /// if the target exceeds the table. This is how governors map a raw
    /// target frequency onto hardware steps.
    pub fn round_up(&self, target_khz: u32) -> &Opp {
        self.opps
            .iter()
            .find(|o| o.freq_khz >= target_khz)
            .unwrap_or(&self.opps[self.opps.len() - 1])
    }

    /// The highest OPP whose frequency is `<= target_khz`, or the minimum
    /// OPP if the target is below the table.
    pub fn round_down(&self, target_khz: u32) -> &Opp {
        self.opps
            .iter()
            .rev()
            .find(|o| o.freq_khz <= target_khz)
            .unwrap_or(&self.opps[0])
    }

    /// The OPP for `freq_khz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_khz` is not an exact entry; governors must only set
    /// table frequencies.
    pub fn opp_at(&self, freq_khz: u32) -> &Opp {
        self.index_of(freq_khz)
            .map(|i| &self.opps[i])
            .unwrap_or_else(|| panic!("frequency {freq_khz} kHz not in OPP table"))
    }

    /// Builds an evenly spaced table from `min_khz` to `max_khz` inclusive
    /// with `steps` points; voltage interpolates linearly from `min_mv` to
    /// `max_mv`.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or the ranges are not ascending.
    pub fn linear(min_khz: u32, max_khz: u32, steps: usize, min_mv: u32, max_mv: u32) -> Self {
        assert!(steps >= 2, "OppTable::linear: need at least 2 steps");
        assert!(
            min_khz < max_khz && min_mv <= max_mv,
            "OppTable::linear: frequency and voltage ranges must ascend"
        );
        let opps = (0..steps)
            .map(|i| {
                let t = i as f64 / (steps - 1) as f64;
                Opp {
                    freq_khz: (min_khz as f64 + t * (max_khz - min_khz) as f64).round() as u32,
                    voltage_mv: (min_mv as f64 + t * (max_mv - min_mv) as f64).round() as u32,
                }
            })
            .collect();
        OppTable::new(opps).expect("linear construction is ascending")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> OppTable {
        OppTable::linear(500_000, 1_300_000, 9, 900, 1_100)
    }

    #[test]
    fn construction_validates() {
        assert_eq!(OppTable::new(vec![]), Err(OppTableError::Empty));
        let dup = vec![
            Opp {
                freq_khz: 1,
                voltage_mv: 1,
            },
            Opp {
                freq_khz: 1,
                voltage_mv: 2,
            },
        ];
        assert_eq!(OppTable::new(dup), Err(OppTableError::NotAscending));
    }

    #[test]
    fn linear_endpoints() {
        let t = table();
        assert_eq!(t.len(), 9);
        assert_eq!(t.min_khz(), 500_000);
        assert_eq!(t.max_khz(), 1_300_000);
        assert_eq!(t.get(0).voltage_mv, 900);
        assert_eq!(t.get(8).voltage_mv, 1_100);
    }

    #[test]
    fn round_up_and_down() {
        let t = table();
        assert_eq!(t.round_up(0).freq_khz, 500_000);
        assert_eq!(t.round_up(500_000).freq_khz, 500_000);
        assert_eq!(t.round_up(510_000).freq_khz, 600_000);
        assert_eq!(t.round_up(9_999_999).freq_khz, 1_300_000);
        assert_eq!(t.round_down(510_000).freq_khz, 500_000);
        assert_eq!(t.round_down(0).freq_khz, 500_000);
        assert_eq!(t.round_down(9_999_999).freq_khz, 1_300_000);
    }

    #[test]
    fn index_and_lookup() {
        let t = table();
        assert_eq!(t.index_of(600_000), Some(1));
        assert_eq!(t.index_of(601_000), None);
        assert_eq!(t.opp_at(700_000).freq_khz, 700_000);
    }

    #[test]
    #[should_panic(expected = "not in OPP table")]
    fn opp_at_panics_off_table() {
        table().opp_at(123);
    }

    #[test]
    fn unit_conversions() {
        let o = Opp {
            freq_khz: 1_300_000,
            voltage_mv: 1100,
        };
        assert!((o.freq_ghz() - 1.3).abs() < 1e-12);
        assert!((o.voltage_v() - 1.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn round_up_is_least_upper_bound(target in 0u32..2_000_000) {
            let t = table();
            let up = t.round_up(target);
            prop_assert!(up.freq_khz >= target.min(t.max_khz()));
            // No table entry below `up` also satisfies the bound.
            for o in t.iter() {
                if o.freq_khz >= target {
                    prop_assert!(up.freq_khz <= o.freq_khz);
                }
            }
        }
    }
}
