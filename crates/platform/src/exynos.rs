//! The Exynos-5422-class platform preset (paper Table I).
//!
//! * Big: 4 × Cortex-A15, out-of-order, 3-issue, 0.8–1.9 GHz, shared 2 MB
//!   16-way L2.
//! * Little: 4 × Cortex-A7, in-order, 2-issue, 0.5–1.3 GHz, shared 512 KB
//!   8-way L2.
//!
//! Frequencies step in 100 MHz increments as on the real part; voltages are
//! linear interpolations across each cluster's V-f envelope (the real rail
//! voltages are not published at every step; the linear envelope preserves
//! the quadratic dynamic-power trend the power model needs).

use crate::cache::CacheModel;
use crate::ids::{ClusterId, CoreKind};
use crate::opp::OppTable;
use crate::perf::PerfModel;
use crate::topology::{Cluster, CoreModel, Platform, Topology};

/// Number of little cores on the preset platform.
pub const N_LITTLE: usize = 4;
/// Number of big cores on the preset platform.
pub const N_BIG: usize = 4;

/// Builds the Exynos-5422-class platform used throughout the reproduction.
///
/// ```
/// let p = bl_platform::exynos::exynos5422();
/// assert_eq!(p.topology.n_cpus(), 8);
/// ```
pub fn exynos5422() -> Platform {
    let little = Cluster {
        id: ClusterId(0),
        core: CoreModel {
            name: "Cortex-A7".to_string(),
            kind: CoreKind::Little,
            issue_width: 2,
            pipeline_depth: 9,
            opps: OppTable::linear(500_000, 1_300_000, 9, 900, 1_100),
        },
        n_cores: N_LITTLE,
        l2: CacheModel::new(512, 8, 64),
    };
    let big = Cluster {
        id: ClusterId(1),
        core: CoreModel {
            name: "Cortex-A15".to_string(),
            kind: CoreKind::Big,
            issue_width: 3,
            pipeline_depth: 18,
            opps: OppTable::linear(800_000, 1_900_000, 12, 900, 1_250),
        },
        n_cores: N_BIG,
        l2: CacheModel::new(2048, 16, 64),
    };
    Platform {
        topology: Topology::new(vec![little, big]),
        perf: PerfModel::default(),
    }
}

/// The little cluster's id on the preset.
pub const LITTLE_CLUSTER: ClusterId = ClusterId(0);
/// The big cluster's id on the preset.
pub const BIG_CLUSTER: ClusterId = ClusterId(1);

/// Ablation platform: the little cluster's DVFS floor extended down to
/// 200 MHz.
///
/// The paper's §VI.B observes that "for many applications, they require
/// less computing capability than a 500MHz little core for a quite
/// significant portion of their execution times" and proposes an even
/// weaker *tiny* core. This preset realizes the nearest same-ISA variant:
/// a little cluster that can clock down to 200 MHz (at a correspondingly
/// lower voltage), letting the Table-V "Min" residency convert into real
/// frequency scaling.
pub fn exynos5422_tiny_floor() -> Platform {
    let base = exynos5422();
    let mut clusters = base.topology.clusters().to_vec();
    clusters[0].core.opps = OppTable::linear(200_000, 1_300_000, 12, 800, 1_100);
    Platform {
        topology: Topology::new(clusters),
        perf: base.perf,
    }
}

/// Ablation platform: the big cluster's L2 shrunk to the little cluster's
/// 512 KB.
///
/// The paper (§III.A) attributes part of the big-core speedup to the L2
/// capacity gap ("the cache difference affects certain cache-sensitive
/// applications significantly, enlarging the performance gap"). This
/// preset removes the gap so the cache contribution to Figure 2 can be
/// isolated.
pub fn exynos5422_equal_l2() -> Platform {
    let base = exynos5422();
    let mut clusters = base.topology.clusters().to_vec();
    clusters[1].l2 = CacheModel::new(512, 16, 64);
    Platform {
        topology: Topology::new(clusters),
        perf: base.perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CpuId;

    #[test]
    fn matches_table_i() {
        let p = exynos5422();
        let little = p.topology.cluster(LITTLE_CLUSTER);
        let big = p.topology.cluster(BIG_CLUSTER);

        assert_eq!(little.core.kind, CoreKind::Little);
        assert_eq!(little.n_cores, 4);
        assert_eq!(little.core.opps.min_khz(), 500_000);
        assert_eq!(little.core.opps.max_khz(), 1_300_000);
        assert_eq!(little.l2.size_kb, 512);
        assert_eq!(little.l2.assoc, 8);
        assert_eq!(little.core.issue_width, 2);

        assert_eq!(big.core.kind, CoreKind::Big);
        assert_eq!(big.n_cores, 4);
        assert_eq!(big.core.opps.min_khz(), 800_000);
        assert_eq!(big.core.opps.max_khz(), 1_900_000);
        assert_eq!(big.l2.size_kb, 2048);
        assert_eq!(big.l2.assoc, 16);
        assert_eq!(big.core.issue_width, 3);
    }

    #[test]
    fn freq_steps_are_100mhz() {
        let p = exynos5422();
        for c in p.topology.clusters() {
            let freqs: Vec<u32> = c.core.opps.iter().map(|o| o.freq_khz).collect();
            for w in freqs.windows(2) {
                assert_eq!(w[1] - w[0], 100_000);
            }
        }
    }

    #[test]
    fn both_shared_frequencies_1_3ghz() {
        // 1.3 GHz exists on both clusters — the iso-frequency comparison point
        // used by the paper's Figures 2 and 3.
        let p = exynos5422();
        for c in p.topology.clusters() {
            assert!(c.core.opps.index_of(1_300_000).is_some());
        }
    }

    #[test]
    fn voltage_rises_with_frequency() {
        let p = exynos5422();
        for c in p.topology.clusters() {
            let volts: Vec<u32> = c.core.opps.iter().map(|o| o.voltage_mv).collect();
            assert!(volts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cpu_ids_little_first() {
        let p = exynos5422();
        assert_eq!(p.topology.kind_of(CpuId(0)), CoreKind::Little);
        assert_eq!(p.topology.kind_of(CpuId(3)), CoreKind::Little);
        assert_eq!(p.topology.kind_of(CpuId(4)), CoreKind::Big);
        assert_eq!(p.topology.kind_of(CpuId(7)), CoreKind::Big);
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn tiny_floor_extends_little_range_only() {
        let p = exynos5422_tiny_floor();
        let little = p.topology.cluster(LITTLE_CLUSTER);
        assert_eq!(little.core.opps.min_khz(), 200_000);
        assert_eq!(little.core.opps.max_khz(), 1_300_000);
        assert_eq!(p.topology.cluster(BIG_CLUSTER).core.opps.min_khz(), 800_000);
    }

    #[test]
    fn equal_l2_removes_capacity_gap() {
        let p = exynos5422_equal_l2();
        assert_eq!(p.topology.cluster(BIG_CLUSTER).l2.size_kb, 512);
        assert_eq!(p.topology.cluster(LITTLE_CLUSTER).l2.size_kb, 512);
        // The microarchitectural difference remains.
        assert_eq!(p.topology.cluster(BIG_CLUSTER).core.issue_width, 3);
    }
}
