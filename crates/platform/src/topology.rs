//! Static platform description: core models, clusters, and the CPU map.

use crate::cache::CacheModel;
use crate::ids::{ClusterId, CoreKind, CpuId};
use crate::opp::OppTable;
use crate::perf::PerfModel;
use serde::{Deserialize, Serialize};

/// Microarchitectural description of one core type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Marketing/architecture name, e.g. "Cortex-A15".
    pub name: String,
    /// Which side of the asymmetric pair this is.
    pub kind: CoreKind,
    /// Superscalar issue width.
    pub issue_width: u8,
    /// Representative pipeline depth in stages.
    pub pipeline_depth: u8,
    /// DVFS operating points for this core's cluster.
    pub opps: OppTable,
}

/// A cluster: `n` identical cores sharing an L2 cache and one frequency
/// domain ("each core type must have the same frequency setting", paper §II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster identity.
    pub id: ClusterId,
    /// The core model replicated across the cluster.
    pub core: CoreModel,
    /// Number of cores in the cluster.
    pub n_cores: usize,
    /// The shared L2.
    pub l2: CacheModel,
}

/// The full CPU map: clusters and the global CPU numbering.
///
/// CPU ids are assigned cluster by cluster: cluster 0's cores come first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    clusters: Vec<Cluster>,
    /// cpu index -> cluster index
    cpu_cluster: Vec<ClusterId>,
}

impl Topology {
    /// Builds a topology from clusters (cluster ids must match positions).
    ///
    /// # Panics
    ///
    /// Panics if cluster ids disagree with their positions or any cluster is
    /// empty.
    pub fn new(clusters: Vec<Cluster>) -> Self {
        let mut cpu_cluster = Vec::new();
        for (i, c) in clusters.iter().enumerate() {
            assert_eq!(c.id.0, i, "cluster ids must match their positions");
            assert!(c.n_cores > 0, "cluster must have at least one core");
            for _ in 0..c.n_cores {
                cpu_cluster.push(c.id);
            }
        }
        Topology {
            clusters,
            cpu_cluster,
        }
    }

    /// Total number of CPUs.
    pub fn n_cpus(&self) -> usize {
        self.cpu_cluster.len()
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Cluster by id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0]
    }

    /// The cluster a CPU belongs to.
    pub fn cluster_of(&self, cpu: CpuId) -> ClusterId {
        self.cpu_cluster[cpu.0]
    }

    /// The core kind of a CPU.
    pub fn kind_of(&self, cpu: CpuId) -> CoreKind {
        self.clusters[self.cluster_of(cpu).0].core.kind
    }

    /// The L2 cache serving a CPU.
    pub fn l2_of(&self, cpu: CpuId) -> &CacheModel {
        &self.clusters[self.cluster_of(cpu).0].l2
    }

    /// All CPU ids, ascending.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..self.n_cpus()).map(CpuId)
    }

    /// CPU ids belonging to `cluster`.
    pub fn cpus_in(&self, cluster: ClusterId) -> impl Iterator<Item = CpuId> + '_ {
        self.cpu_cluster
            .iter()
            .enumerate()
            .filter(move |(_, c)| **c == cluster)
            .map(|(i, _)| CpuId(i))
    }

    /// CPU ids of the given core kind.
    pub fn cpus_of_kind(&self, kind: CoreKind) -> impl Iterator<Item = CpuId> + '_ {
        self.cpus().filter(move |c| self.kind_of(*c) == kind)
    }

    /// The first cluster of the given kind, if any.
    pub fn cluster_of_kind(&self, kind: CoreKind) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.core.kind == kind)
    }
}

/// A complete platform: topology plus the analytic performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// The CPU map.
    pub topology: Topology,
    /// CPI model constants.
    pub perf: PerfModel,
}

impl Platform {
    /// Instruction throughput for `profile` on `cpu` at `freq_khz`.
    pub fn ips(&self, profile: &crate::perf::WorkProfile, cpu: CpuId, freq_khz: u32) -> f64 {
        let kind = self.topology.kind_of(cpu);
        let l2 = self.topology.l2_of(cpu);
        self.perf.ips(profile, kind, l2, freq_khz as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exynos::exynos5422;
    use crate::opp::OppTable;

    fn two_cluster() -> Topology {
        let little = Cluster {
            id: ClusterId(0),
            core: CoreModel {
                name: "L".into(),
                kind: CoreKind::Little,
                issue_width: 2,
                pipeline_depth: 8,
                opps: OppTable::linear(500_000, 1_300_000, 9, 900, 1100),
            },
            n_cores: 4,
            l2: CacheModel::new(512, 8, 64),
        };
        let big = Cluster {
            id: ClusterId(1),
            core: CoreModel {
                name: "B".into(),
                kind: CoreKind::Big,
                issue_width: 3,
                pipeline_depth: 18,
                opps: OppTable::linear(800_000, 1_900_000, 12, 900, 1250),
            },
            n_cores: 4,
            l2: CacheModel::new(2048, 16, 64),
        };
        Topology::new(vec![little, big])
    }

    #[test]
    fn cpu_numbering_is_cluster_major() {
        let t = two_cluster();
        assert_eq!(t.n_cpus(), 8);
        assert_eq!(t.n_clusters(), 2);
        for i in 0..4 {
            assert_eq!(t.cluster_of(CpuId(i)), ClusterId(0));
            assert_eq!(t.kind_of(CpuId(i)), CoreKind::Little);
        }
        for i in 4..8 {
            assert_eq!(t.cluster_of(CpuId(i)), ClusterId(1));
            assert_eq!(t.kind_of(CpuId(i)), CoreKind::Big);
        }
    }

    #[test]
    fn cpus_in_and_of_kind() {
        let t = two_cluster();
        let little: Vec<_> = t.cpus_in(ClusterId(0)).collect();
        assert_eq!(little, vec![CpuId(0), CpuId(1), CpuId(2), CpuId(3)]);
        let big: Vec<_> = t.cpus_of_kind(CoreKind::Big).collect();
        assert_eq!(big, vec![CpuId(4), CpuId(5), CpuId(6), CpuId(7)]);
        assert_eq!(t.cluster_of_kind(CoreKind::Big).unwrap().id, ClusterId(1));
    }

    #[test]
    fn l2_differs_by_cluster() {
        let t = two_cluster();
        assert_eq!(t.l2_of(CpuId(0)).size_kb, 512);
        assert_eq!(t.l2_of(CpuId(7)).size_kb, 2048);
    }

    #[test]
    #[should_panic(expected = "positions")]
    fn mismatched_ids_rejected() {
        let mut clusters = two_cluster().clusters().to_vec();
        clusters[1].id = ClusterId(5);
        Topology::new(clusters);
    }

    #[test]
    fn platform_ips_uses_cluster_cache() {
        let p = exynos5422();
        let profile = crate::perf::WorkProfile {
            cpi_little: 1.6,
            cpi_big: 0.9,
            mpki_ref: 20.0,
            cache_beta: 1.0,
            energy_intensity: 1.0,
        };
        let little_ips = p.ips(&profile, CpuId(0), 1_300_000);
        let big_ips = p.ips(&profile, CpuId(4), 1_300_000);
        assert!(big_ips / little_ips > 2.0, "cache gap should amplify");
    }
}
