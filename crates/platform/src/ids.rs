//! Identifiers for CPUs, clusters and core kinds.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The two core types of an asymmetric multi-core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// Energy-optimized in-order core (Cortex-A7-class).
    Little,
    /// Performance-optimized out-of-order core (Cortex-A15-class).
    Big,
}

impl CoreKind {
    /// Both kinds, little first.
    pub const ALL: [CoreKind; 2] = [CoreKind::Little, CoreKind::Big];

    /// The other kind.
    pub fn other(self) -> CoreKind {
        match self {
            CoreKind::Little => CoreKind::Big,
            CoreKind::Big => CoreKind::Little,
        }
    }

    /// Returns true for [`CoreKind::Big`].
    pub fn is_big(self) -> bool {
        matches!(self, CoreKind::Big)
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreKind::Little => write!(f, "little"),
            CoreKind::Big => write!(f, "big"),
        }
    }
}

/// A logical CPU index (0-based, global across clusters).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A cluster index (0-based). On the modeled Exynos 5422, cluster 0 is
/// little and cluster 1 is big.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClusterId(pub usize);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_kind_flips() {
        assert_eq!(CoreKind::Little.other(), CoreKind::Big);
        assert_eq!(CoreKind::Big.other(), CoreKind::Little);
        assert!(CoreKind::Big.is_big());
        assert!(!CoreKind::Little.is_big());
    }

    #[test]
    fn display_formats() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(ClusterId(1).to_string(), "cluster1");
        assert_eq!(CoreKind::Big.to_string(), "big");
        assert_eq!(CoreKind::Little.to_string(), "little");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(CpuId(0) < CpuId(1));
        assert!(ClusterId(0) < ClusterId(1));
    }
}
