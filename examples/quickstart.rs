//! Quickstart: simulate one mobile app on the default asymmetric system
//! and print every headline metric.
//!
//! ```sh
//! cargo run --release --example quickstart [app-name]
//! ```

use biglittle::{Simulation, SystemConfig};
use bl_workloads::apps::{app_by_name, mobile_apps};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Video Player".to_string());
    let Some(app) = app_by_name(&name) else {
        eprintln!("unknown app {name:?}; available:");
        for a in mobile_apps() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };

    println!(
        "Simulating {:?} on the default system (L4+B4, HMP, interactive)\n",
        app.name
    );
    let mut sim = Simulation::builder()
        .config(SystemConfig::default())
        .build()
        .expect("default config is valid");
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).expect("app runs to completion");

    println!("simulated time : {:.2} s", r.sim_time.as_secs_f64());
    println!("average power  : {:.0} mW", r.avg_power_mw);
    println!("energy         : {:.0} mJ", r.energy_mj);
    if let Some(lat) = r.latency_ms() {
        println!("script latency : {:.0} ms", lat);
    }
    if let Some(fps) = r.fps {
        println!("average FPS    : {:.1}", fps.avg_fps);
        println!("worst-1s FPS   : {:.1}", fps.min_fps);
    }
    println!();
    println!("idle samples   : {:.1} %", r.tlp.idle_pct);
    println!(
        "little-only    : {:.1} % of active samples",
        r.tlp.little_pct
    );
    println!("big active     : {:.1} % of active samples", r.tlp.big_pct);
    println!("TLP            : {:.2} cores", r.tlp.tlp);
    println!(
        "HMP migrations : {} up / {} down",
        r.migrations.0, r.migrations.1
    );
}
