//! Trace dump: run one app with time-series tracing enabled and write a
//! CSV of frequencies, active core counts, power and migrations — ready for
//! plotting the paper's time-domain behavior.
//!
//! ```sh
//! cargo run --release --example trace_dump -- "Eternity Warriors 2" /tmp/trace.csv
//! ```

use biglittle::{Simulation, SystemConfig};
use bl_workloads::apps::app_by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args
        .next()
        .unwrap_or_else(|| "Eternity Warriors 2".to_string());
    let out = args.next();
    let app = app_by_name(&name).expect("unknown app (try `quickstart` for the list)");

    let mut sim = Simulation::builder()
        .config(SystemConfig::default())
        .tracing(true)
        .build()
        .expect("default config is valid");
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).expect("app runs to completion");

    let trace = sim.trace().expect("tracing enabled");
    let csv = trace.to_csv();
    match out {
        Some(path) => {
            std::fs::write(&path, &csv).expect("write trace file");
            eprintln!(
                "wrote {} samples over {:.1}s to {path}",
                trace.len(),
                r.sim_time.as_secs_f64()
            );
        }
        None => print!("{csv}"),
    }

    // A small console summary of what the trace shows.
    let busy_samples = trace
        .rows()
        .iter()
        .filter(|row| row.active_little + row.active_big > 0)
        .count();
    let big_samples = trace.rows().iter().filter(|row| row.active_big > 0).count();
    eprintln!(
        "summary: {} samples, {:.1}% busy, {:.1}% with a big core active, final migrations {}↑/{}↓",
        trace.len(),
        busy_samples as f64 / trace.len() as f64 * 100.0,
        big_samples as f64 / trace.len() as f64 * 100.0,
        r.migrations.0,
        r.migrations.1
    );
}
