//! Scenario sweep: describe a batch of runs declaratively and execute them
//! in parallel through the sweep engine, with per-scenario seeds derived
//! from one base seed.
//!
//! ```sh
//! cargo run --release --example sweep_scenarios [jobs]
//! ```

use biglittle::{sweep, Scenario, SweepOptions, SystemConfig};
use bl_workloads::apps::mobile_apps;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0); // 0 = all available cores

    // One scenario per app, on the default system.
    let mut scenarios: Vec<Scenario> = mobile_apps()
        .into_iter()
        .map(|app| {
            Scenario::app(
                format!("suite/{}", app.name),
                app.clone(),
                SystemConfig::baseline(),
            )
        })
        .collect();
    // Independent per-scenario seeds from one base seed.
    sweep::seed_scenarios(&mut scenarios, 42);

    let t0 = std::time::Instant::now();
    let outcome = sweep::run_with(&scenarios, &SweepOptions::with_jobs(jobs));
    let wall = t0.elapsed();

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "scenario", "power mW", "energy mJ", "TLP", "big %"
    );
    for (sc, result) in scenarios.iter().zip(&outcome.results) {
        match result {
            Ok(r) => println!(
                "{:<22} {:>10.0} {:>10.0} {:>8.2} {:>8.1}",
                sc.label, r.avg_power_mw, r.energy_mj, r.tlp.tlp, r.tlp.big_pct
            ),
            Err(e) => println!("{:<22} failed: {e}", sc.label),
        }
    }
    println!(
        "\n{} scenarios in {:.2} s ({} workers requested, {} cores available)",
        outcome.results.len(),
        wall.as_secs_f64(),
        jobs,
        bl_simcore::pool::available_jobs()
    );
}
