//! Governor tuning: compare DVFS governors and interactive-governor
//! tunables on one app — the §VI trade-off between responsiveness and
//! power, interactively explorable.
//!
//! ```sh
//! cargo run --release --example governor_tuning [app-name]
//! ```

use biglittle::experiments::run_app_with;
use biglittle::SystemConfig;
use bl_governor::classic::{ConservativeParams, OndemandParams};
use bl_governor::{GovernorConfig, InteractiveParams};
use bl_workloads::apps::app_by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Eternity Warriors 2".to_string());
    let app = app_by_name(&name).expect("unknown app (try `quickstart` for the list)");

    let candidates: Vec<(&str, GovernorConfig)> = vec![
        (
            "interactive (default 20ms)",
            GovernorConfig::platform_default(),
        ),
        (
            "interactive 60ms",
            GovernorConfig::Interactive(InteractiveParams::sampling_60ms()),
        ),
        (
            "interactive 100ms",
            GovernorConfig::Interactive(InteractiveParams::sampling_100ms()),
        ),
        (
            "ondemand",
            GovernorConfig::Ondemand(OndemandParams::default()),
        ),
        (
            "conservative",
            GovernorConfig::Conservative(ConservativeParams::default()),
        ),
        ("performance", GovernorConfig::Performance),
        ("powersave", GovernorConfig::Powersave),
    ];

    println!("Governor comparison on {:?}\n", app.name);
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "governor", "power mW", "perf", "energy mJ"
    );
    for (label, gov) in candidates {
        let r = run_app_with(&app, SystemConfig::baseline().with_governor(gov));
        let perf = match (r.latency_ms(), r.fps) {
            (Some(ms), _) => format!("{ms:.0} ms"),
            (None, Some(f)) => format!("{:.1} fps", f.avg_fps),
            _ => "-".to_string(),
        };
        println!(
            "{label:<28} {:>10.0} {perf:>12} {:>12.0}",
            r.avg_power_mw, r.energy_mj
        );
    }
    println!("\npowersave pins min frequency (slow but frugal); performance pins max.");
    println!("The interactive variants trade sampling latency for stability (paper §VI.C).");
}
