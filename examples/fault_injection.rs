//! Fault injection: run one app three times — undisturbed, through a
//! big-cluster outage, and with the thermal model throttling — and compare
//! what the resilience layer reports.
//!
//! ```sh
//! cargo run --release --example fault_injection [app-name]
//! ```

use biglittle::{RunResult, Simulation, SystemConfig};
use bl_simcore::fault::{FaultKind, FaultPlan};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::{app_by_name, mobile_apps, AppModel};

fn run(app: &AppModel, cfg: SystemConfig) -> RunResult {
    let mut sim = Simulation::try_new(cfg).expect("config is valid");
    sim.spawn_app(app);
    sim.try_run_app(app).expect("faulted runs still complete")
}

fn report(label: &str, r: &RunResult) {
    print!("{label:<22} {:>7.0} mW", r.avg_power_mw);
    if let Some(lat) = r.latency_ms() {
        print!("  latency {lat:>7.0} ms");
    }
    if let Some(fps) = r.fps {
        print!("  avg fps {:>5.1}", fps.avg_fps);
    }
    let res = &r.resilience;
    if !res.is_quiet() {
        print!(
            "  [{} faults, {} rehomed, {} trips, {:.1} s throttled]",
            res.faults_injected,
            res.tasks_rehomed,
            res.throttle_trips,
            res.total_throttled().as_secs_f64()
        );
    }
    println!();
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Angry Bird".to_string());
    let Some(app) = app_by_name(&name) else {
        eprintln!("unknown app {name:?}; available:");
        for a in mobile_apps() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };

    println!("Resilience comparison for {:?}\n", app.name);

    // 1. Undisturbed baseline.
    let clean = run(&app, SystemConfig::baseline());
    report("baseline", &clean);

    // 2. The whole big cluster dies 200 ms in and returns 2 s later; the
    //    kernel drains and rehomes every task onto the little cluster.
    let outage = FaultPlan::new().with_outage(
        SimTime::from_millis(200),
        SimDuration::from_secs(2),
        &[4, 5, 6, 7],
    );
    let degraded = run(&app, SystemConfig::baseline().with_faults(outage));
    report("big-cluster outage", &degraded);

    // 3. Thermal model on, plus an injected 60 °C spike (a neighbouring
    //    component dumping heat): the big cluster throttles to 1.2 GHz
    //    until it cools below the release threshold.
    let spike = FaultPlan::new().with(
        SimTime::from_millis(300),
        FaultKind::ThermalSpike {
            cluster: 1,
            delta_c: 60.0,
        },
    );
    let throttled = run(
        &app,
        SystemConfig::baseline()
            .with_thermal(true)
            .with_faults(spike),
    );
    report("thermal spike", &throttled);

    if !throttled.resilience.peak_temp_c.is_empty() {
        println!(
            "\npeak junction temps: little {:.1} °C, big {:.1} °C",
            throttled.resilience.peak_temp_c[0], throttled.resilience.peak_temp_c[1]
        );
    }
    println!("\nSame plan + same seed reproduces these numbers bit-identically.");
}
