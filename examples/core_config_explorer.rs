//! Core-configuration explorer: sweep hotplug combinations for one app and
//! print the performance/power frontier — the paper's §V.C question "how
//! many big cores does a phone actually need?".
//!
//! ```sh
//! cargo run --release --example core_config_explorer [app-name]
//! ```

use biglittle::experiments::run_app_with;
use biglittle::SystemConfig;
use bl_platform::config::CoreConfig;
use bl_workloads::apps::app_by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BBench".to_string());
    let app = app_by_name(&name).expect("unknown app (try `quickstart` for the list)");

    let baseline = run_app_with(&app, SystemConfig::baseline());
    let base_perf = baseline.perf_score().unwrap_or(f64::NAN);

    println!(
        "Core-configuration sweep for {:?} (baseline L4+B4)\n",
        app.name
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "config", "power mW", "saving %", "rel. perf", "TLP"
    );
    let mut configs = vec![CoreConfig::BASELINE];
    configs.extend(CoreConfig::paper_sweep());
    for cc in configs {
        let r = if cc == CoreConfig::BASELINE {
            baseline.clone()
        } else {
            run_app_with(&app, SystemConfig::baseline().with_core_config(cc))
        };
        let saving = (1.0 - r.avg_power_mw / baseline.avg_power_mw) * 100.0;
        let rel = r.perf_score().map(|p| p / base_perf).unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>10.0} {:>12.1} {:>12.2} {:>10.2}",
            cc.to_string(),
            r.avg_power_mw,
            saving,
            rel,
            r.tlp.tlp
        );
    }
    println!("\nThe paper's conclusion: one big core buys most of the interactivity;");
    println!("four big cores are rarely exercised (L2+B1 / L4+B1 balance best).");
}
