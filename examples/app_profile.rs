//! App profiler: run one app on the default system and print the full
//! characterization the paper reports — the Table III row, the Table IV
//! core-type matrix, the Table V efficiency decomposition, and the
//! Figure 9/10 frequency residency.
//!
//! ```sh
//! cargo run --release --example app_profile [app-name]
//! ```

use biglittle::{Simulation, SystemConfig};
use bl_platform::exynos::exynos5422;
use bl_platform::ids::CoreKind;
use bl_simcore::time::SimDuration;
use bl_workloads::apps::app_by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Eternity Warriors 2".to_string());
    let app = app_by_name(&name).expect("unknown app (try `quickstart` for the list)");

    let mut sim = Simulation::builder()
        .config(SystemConfig::default())
        .build()
        .expect("default config is valid");
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).expect("app runs to completion");

    println!("=== {} — full characterization ===\n", app.name);

    println!("Table III row:");
    println!(
        "  idle {:.2}%   little {:.2}%   big {:.2}%   TLP {:.2}\n",
        r.tlp.idle_pct, r.tlp.little_pct, r.tlp.big_pct, r.tlp.tlp
    );

    println!("Table IV matrix (% of samples; rows = active big cores, cols = active little):");
    print!("      ");
    for l in 0..r.matrix_pct[0].len() {
        print!("   C{l}  ");
    }
    println!();
    for (b, row) in r.matrix_pct.iter().enumerate() {
        print!("  C{b}  ");
        for v in row {
            print!(" {v:5.2} ");
        }
        println!();
    }

    println!("\nTable V efficiency decomposition (% of active core-samples):");
    let labels = ["Min", "<50%", "50-70%", "70-95%", ">95%", "Full"];
    for (l, v) in labels.iter().zip(r.efficiency_pct.iter()) {
        println!("  {l:<7} {v:6.2}%");
    }

    println!("\nPer-thread CPU time (little / big):");
    let mut rows = sim.kernel().task_report();
    rows.sort_by_key(|r| std::cmp::Reverse(r.cpu_time));
    for row in rows.iter().filter(|r| r.cpu_time > SimDuration::ZERO) {
        println!(
            "  {:<28} {:>8.1} ms  ({:>7.1} little / {:>7.1} big)",
            row.name,
            row.cpu_time.as_millis_f64(),
            row.little_time.as_millis_f64(),
            row.big_time.as_millis_f64(),
        );
    }

    let platform = exynos5422();
    for (kind, shares) in [
        (CoreKind::Little, &r.little_residency),
        (CoreKind::Big, &r.big_residency),
    ] {
        let cluster = platform.topology.cluster_of_kind(kind).unwrap();
        println!("\n{kind} cluster frequency residency (% of active time):");
        for (opp, share) in cluster.core.opps.iter().zip(shares.iter()) {
            let bar_len = (share * 50.0).round() as usize;
            println!(
                "  {:>4.1} GHz {:6.2}%  {}",
                opp.freq_ghz(),
                share * 100.0,
                "#".repeat(bar_len)
            );
        }
    }
}
