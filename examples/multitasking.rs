//! Multitasking: run two apps concurrently — a foreground game plus a
//! background encoder — and watch the asymmetric scheduler arbitrate.
//!
//! The paper measures apps in isolation (its §V notes the limited screen
//! keeps mobile multitasking rare); the simulator has no such restriction.
//!
//! ```sh
//! cargo run --release --example multitasking
//! ```

use biglittle::{Simulation, SystemConfig};
use bl_simcore::time::SimTime;
use bl_workloads::apps::app_by_name;

fn main() {
    let game = app_by_name("Eternity Warriors 2").unwrap();
    let encoder = app_by_name("Encoder").unwrap();

    // Solo baseline for the game.
    let solo = {
        let mut sim = Simulation::builder()
            .config(SystemConfig::default())
            .build()
            .expect("default config is valid");
        sim.spawn_app(&game);
        sim.try_run_app(&game).expect("game runs to completion")
    };

    // Game + encoder together.
    let mut sim = Simulation::builder()
        .config(SystemConfig::default())
        .build()
        .expect("default config is valid");
    sim.spawn_app(&game);
    sim.spawn_app(&encoder);
    sim.try_run_until(SimTime::ZERO + game.run_for)
        .expect("combined run completes");
    let combined = sim.finish();

    println!("Foreground: {}   Background: {}\n", game.name, encoder.name);
    println!("                      game alone    game + encoder");
    println!(
        "avg power        {:>10.0} mW {:>12.0} mW",
        solo.avg_power_mw, combined.avg_power_mw
    );
    println!(
        "game avg FPS     {:>13.1} {:>15.1}",
        solo.fps.map(|f| f.avg_fps).unwrap_or(f64::NAN),
        combined.fps.map(|f| f.avg_fps).unwrap_or(f64::NAN)
    );
    println!(
        "game min FPS     {:>13.1} {:>15.1}",
        solo.fps.map(|f| f.min_fps).unwrap_or(f64::NAN),
        combined.fps.map(|f| f.min_fps).unwrap_or(f64::NAN)
    );
    println!(
        "big-core usage   {:>12.1}% {:>14.1}%",
        solo.tlp.big_pct, combined.tlp.big_pct
    );
    println!(
        "TLP              {:>13.2} {:>15.2}",
        solo.tlp.tlp, combined.tlp.tlp
    );
    if let Some(lat) = combined.latency_ms() {
        println!(
            "\nencoder finished its job in {:.1} s while the game ran",
            lat / 1e3
        );
    } else {
        println!("\nencoder did not finish within the game session");
    }
    println!(
        "HMP migrations: {} up / {} down",
        combined.migrations.0, combined.migrations.1
    );
}
